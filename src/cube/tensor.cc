#include "cube/tensor.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace vecube {

namespace {

Result<uint64_t> CheckedProduct(const std::vector<uint32_t>& extents) {
  if (extents.empty()) {
    return Status::InvalidArgument("tensor must have at least one dimension");
  }
  uint64_t n = 1;
  for (uint32_t e : extents) {
    if (e == 0) return Status::InvalidArgument("tensor extent must be >= 1");
    if (n > std::numeric_limits<uint64_t>::max() / e) {
      return Status::InvalidArgument("tensor volume overflows 64 bits");
    }
    n *= e;
  }
  if (n > (uint64_t{1} << 40)) {
    return Status::InvalidArgument("tensor volume exceeds 2^40 cells");
  }
  return n;
}

}  // namespace

Result<Tensor> Tensor::Zeros(std::vector<uint32_t> extents) {
  uint64_t n;
  VECUBE_ASSIGN_OR_RETURN(n, CheckedProduct(extents));
  Tensor t;
  t.extents_ = std::move(extents);
  t.data_.assign(n, 0.0);
  t.ComputeStrides();
  return t;
}

Result<Tensor> Tensor::Uninitialized(std::vector<uint32_t> extents) {
  uint64_t n;
  VECUBE_ASSIGN_OR_RETURN(n, CheckedProduct(extents));
  Tensor t;
  t.extents_ = std::move(extents);
  // TensorAllocator's default construction is a no-op, so this allocates
  // without touching the payload.
  t.data_.resize(n);
  t.ComputeStrides();
  return t;
}

Result<Tensor> Tensor::FromData(std::vector<uint32_t> extents,
                                std::vector<double> data) {
  uint64_t n;
  VECUBE_ASSIGN_OR_RETURN(n, CheckedProduct(extents));
  if (n != data.size()) {
    return Status::InvalidArgument(
        "data size " + std::to_string(data.size()) +
        " does not match extents product " + std::to_string(n));
  }
  Tensor t;
  t.extents_ = std::move(extents);
  t.data_.assign(data.begin(), data.end());
  t.ComputeStrides();
  return t;
}

Result<Tensor> Tensor::FromBuffer(std::vector<uint32_t> extents,
                                  TensorBuffer data) {
  uint64_t n;
  VECUBE_ASSIGN_OR_RETURN(n, CheckedProduct(extents));
  if (n != data.size()) {
    return Status::InvalidArgument(
        "data size " + std::to_string(data.size()) +
        " does not match extents product " + std::to_string(n));
  }
  Tensor t;
  t.extents_ = std::move(extents);
  t.data_ = std::move(data);
  t.ComputeStrides();
  return t;
}

void Tensor::ComputeStrides() {
  strides_.resize(extents_.size());
  uint64_t stride = 1;
  for (size_t i = extents_.size(); i-- > 0;) {
    strides_[i] = stride;
    stride *= extents_[i];
  }
}

uint64_t Tensor::FlatIndex(const std::vector<uint32_t>& coords) const {
  VECUBE_DCHECK(coords.size() == extents_.size());
  uint64_t flat = 0;
  for (size_t i = 0; i < coords.size(); ++i) {
    VECUBE_DCHECK(coords[i] < extents_[i]);
    flat += coords[i] * strides_[i];
  }
  return flat;
}

double Tensor::At(const std::vector<uint32_t>& coords) const {
  return data_[FlatIndex(coords)];
}

void Tensor::Set(const std::vector<uint32_t>& coords, double value) {
  data_[FlatIndex(coords)] = value;
}

double Tensor::Total() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

bool Tensor::ApproxEquals(const Tensor& other, double tol) const {
  if (extents_ != other.extents_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::ShapeString() const {
  std::string out = "[";
  for (size_t i = 0; i < extents_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(extents_[i]);
  }
  out += "]";
  return out;
}

}  // namespace vecube
