#include "cube/shape.h"

#include <limits>

#include "util/bits.h"
#include "util/logging.h"

namespace vecube {

Result<CubeShape> CubeShape::Make(std::vector<uint32_t> extents) {
  if (extents.empty()) {
    return Status::InvalidArgument("cube must have at least one dimension");
  }
  // With d <= 24 and volume <= 2^40, the view-element count
  // Π(2n_m - 1) < 2^d * volume <= 2^64 always fits in a uint64_t, which
  // the element indexers rely on. Engines with fixed-arity planning
  // buffers (assembly, Procedure 3, Algorithm 1) impose their own, lower
  // limits and must reject higher-arity shapes themselves.
  if (extents.size() > 24) {
    return Status::InvalidArgument(
        "cube dimensionality is limited to 24 (got " +
        std::to_string(extents.size()) + ")");
  }
  uint64_t volume = 1;
  for (uint32_t e : extents) {
    if (!IsPowerOfTwo(e)) {
      return Status::InvalidArgument(
          "every cube extent must be a power of two (got " +
          std::to_string(e) + ")");
    }
    if (volume > std::numeric_limits<uint64_t>::max() / e) {
      return Status::InvalidArgument("cube volume overflows 64 bits");
    }
    volume *= e;
  }
  // Keep dense cubes allocatable: 2^40 cells of doubles is already 8 TiB.
  if (volume > (uint64_t{1} << 40)) {
    return Status::InvalidArgument("cube volume exceeds 2^40 cells");
  }
  CubeShape shape;
  shape.extents_ = std::move(extents);
  shape.volume_ = volume;
  shape.log_extents_.resize(shape.extents_.size());
  shape.strides_.resize(shape.extents_.size());
  uint64_t stride = 1;
  for (size_t i = shape.extents_.size(); i-- > 0;) {
    shape.log_extents_[i] = ExactLog2(shape.extents_[i]);
    shape.strides_[i] = stride;
    stride *= shape.extents_[i];
  }
  return shape;
}

Result<CubeShape> CubeShape::MakeSquare(uint32_t d, uint32_t n) {
  return Make(std::vector<uint32_t>(d, n));
}

Result<CubeShape> CubeShape::MakePadded(
    const std::vector<uint32_t>& raw_extents) {
  std::vector<uint32_t> padded(raw_extents.size());
  for (size_t i = 0; i < raw_extents.size(); ++i) {
    if (raw_extents[i] == 0) {
      return Status::InvalidArgument("extent must be >= 1");
    }
    if (raw_extents[i] > (1u << 30)) {
      return Status::InvalidArgument("extent too large to pad");
    }
    padded[i] = static_cast<uint32_t>(NextPowerOfTwo(raw_extents[i]));
  }
  return Make(std::move(padded));
}

uint64_t CubeShape::FlatIndex(const std::vector<uint32_t>& coords) const {
  VECUBE_DCHECK(coords.size() == extents_.size());
  uint64_t flat = 0;
  for (size_t i = 0; i < coords.size(); ++i) {
    VECUBE_DCHECK(coords[i] < extents_[i]);
    flat += coords[i] * strides_[i];
  }
  return flat;
}

std::vector<uint32_t> CubeShape::Coords(uint64_t flat) const {
  VECUBE_DCHECK(flat < volume_);
  std::vector<uint32_t> coords(extents_.size());
  for (size_t i = 0; i < extents_.size(); ++i) {
    coords[i] = static_cast<uint32_t>(flat / strides_[i]);
    flat %= strides_[i];
  }
  return coords;
}

std::string CubeShape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < extents_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(extents_[i]);
  }
  out += "]";
  return out;
}

}  // namespace vecube
