#include "cube/cube_builder.h"

#include <string>

namespace vecube {

Result<BuiltCube> CubeBuilder::Build(const Relation& relation,
                                     const CubeShape& shape,
                                     const CubeBuildOptions& options) {
  if (relation.num_functional() != shape.ndim()) {
    return Status::InvalidArgument(
        "relation has " + std::to_string(relation.num_functional()) +
        " functional attributes but cube has " + std::to_string(shape.ndim()) +
        " dimensions");
  }
  if (!options.count_instead_of_sum &&
      options.measure_column >= relation.num_measures()) {
    return Status::InvalidArgument("measure column out of range");
  }

  BuiltCube built;
  built.shape = shape;
  VECUBE_ASSIGN_OR_RETURN(built.cube, Tensor::Zeros(shape.extents()));
  if (options.mapping == KeyMapping::kDictionary) {
    built.dictionaries.resize(shape.ndim());
  }

  const uint32_t d = shape.ndim();
  std::vector<uint32_t> coords(d);
  for (uint64_t row = 0; row < relation.num_rows(); ++row) {
    for (uint32_t m = 0; m < d; ++m) {
      const int64_t key = relation.key(m, row);
      uint32_t index;
      if (options.mapping == KeyMapping::kDirect) {
        if (key < 0 || static_cast<uint64_t>(key) >= shape.extent(m)) {
          return Status::OutOfRange(
              "row " + std::to_string(row) + ": key " + std::to_string(key) +
              " outside dimension " + std::to_string(m) + " extent " +
              std::to_string(shape.extent(m)));
        }
        index = static_cast<uint32_t>(key);
      } else {
        index = built.dictionaries[m].Encode(key);
        if (index >= shape.extent(m)) {
          return Status::OutOfRange(
              "dimension " + std::to_string(m) + " has more than " +
              std::to_string(shape.extent(m)) + " distinct values");
        }
      }
      coords[m] = index;
    }
    const double value = options.count_instead_of_sum
                             ? 1.0
                             : relation.measure(options.measure_column, row);
    built.cube[built.cube.FlatIndex(coords)] += value;
  }
  return built;
}

}  // namespace vecube
