// Tensor: a dense row-major multi-dimensional array of doubles.
//
// The data cube itself and every materialized view element are Tensors.
// Unlike CubeShape, a Tensor's extents need not be powers of two along
// totally-aggregated dimensions (they become 1), so Tensor carries plain
// extents and derives its own strides.
//
// Storage is 64-byte aligned (kTensorAlignment) so the vectorized Haar
// kernels can use aligned SIMD loads on whole cache lines and no tensor
// payload straddles a line it does not own. The allocator also makes
// default construction a no-op, which is what lets Tensor::Uninitialized
// skip the zero-fill that Tensor::Zeros pays — kernels that overwrite
// every output cell allocate through Uninitialized and save a full write
// pass over the output.

#ifndef VECUBE_CUBE_TENSOR_H_
#define VECUBE_CUBE_TENSOR_H_

#include <cstdint>
#include <new>  // vecube-lint: disable=no-naked-new (the <new> header)
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace vecube {

/// Alignment (bytes) of every Tensor/scratch payload allocation.
inline constexpr std::size_t kTensorAlignment = 64;

/// Allocator for tensor payloads: 64-byte-aligned allocations, and
/// *default* construction is a no-op so resize()/vector(n) leave the cells
/// uninitialized (value construction, e.g. assign(n, 0.0), still writes).
template <typename T>
class TensorAllocator {
 public:
  using value_type = T;

  TensorAllocator() noexcept = default;
  template <typename U>
  explicit TensorAllocator(const TensorAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kTensorAlignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kTensorAlignment});
  }

  // Default construction deliberately leaves the cell unwritten (trivial
  // types only — the payload is always double).
  template <typename U>
  void construct(U*) noexcept {}
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }

  template <typename U>
  bool operator==(const TensorAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const TensorAllocator<U>&) const noexcept {
    return false;
  }
};

/// Aligned, lazily-initialized payload vector shared by Tensor and the
/// kernel scratch arena.
using TensorBuffer = std::vector<double, TensorAllocator<double>>;

/// Dense row-major array of double cells.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor. Extents may be any positive values.
  static Result<Tensor> Zeros(std::vector<uint32_t> extents);

  /// Allocates a tensor whose cells are UNINITIALIZED — no zero-fill pass.
  /// Strictly for kernels that overwrite every cell before the tensor
  /// escapes; reading a cell before writing it is undefined behavior.
  static Result<Tensor> Uninitialized(std::vector<uint32_t> extents);

  /// Wraps existing data; `data.size()` must equal the product of extents.
  static Result<Tensor> FromData(std::vector<uint32_t> extents,
                                 std::vector<double> data);

  /// Move-adopts an aligned payload buffer (no copy); `data.size()` must
  /// equal the product of extents.
  static Result<Tensor> FromBuffer(std::vector<uint32_t> extents,
                                   TensorBuffer data);

  [[nodiscard]] uint32_t ndim() const { return static_cast<uint32_t>(extents_.size()); }
  [[nodiscard]] const std::vector<uint32_t>& extents() const { return extents_; }
  [[nodiscard]] uint32_t extent(uint32_t dim) const { return extents_[dim]; }
  [[nodiscard]] uint64_t size() const { return data_.size(); }
  [[nodiscard]] uint64_t stride(uint32_t dim) const { return strides_[dim]; }

  [[nodiscard]] const TensorBuffer& data() const { return data_; }
  TensorBuffer& data() { return data_; }

  double* raw() { return data_.data(); }
  [[nodiscard]] const double* raw() const { return data_.data(); }

  double& operator[](uint64_t flat) { return data_[flat]; }
  double operator[](uint64_t flat) const { return data_[flat]; }

  /// Element access by coordinates (bounds-checked in debug builds).
  double At(const std::vector<uint32_t>& coords) const;
  void Set(const std::vector<uint32_t>& coords, double value);

  uint64_t FlatIndex(const std::vector<uint32_t>& coords) const;

  /// Sum of all cells.
  double Total() const;

  /// True iff same extents and all cells within `tol` of each other.
  bool ApproxEquals(const Tensor& other, double tol = 1e-9) const;

  std::string ShapeString() const;

 private:
  std::vector<uint32_t> extents_;
  std::vector<uint64_t> strides_;
  TensorBuffer data_;

  void ComputeStrides();
};

}  // namespace vecube

#endif  // VECUBE_CUBE_TENSOR_H_
