// Tensor: a dense row-major multi-dimensional array of doubles.
//
// The data cube itself and every materialized view element are Tensors.
// Unlike CubeShape, a Tensor's extents need not be powers of two along
// totally-aggregated dimensions (they become 1), so Tensor carries plain
// extents and derives its own strides.

#ifndef VECUBE_CUBE_TENSOR_H_
#define VECUBE_CUBE_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace vecube {

/// Dense row-major array of double cells.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor. Extents may be any positive values.
  static Result<Tensor> Zeros(std::vector<uint32_t> extents);

  /// Wraps existing data; `data.size()` must equal the product of extents.
  static Result<Tensor> FromData(std::vector<uint32_t> extents,
                                 std::vector<double> data);

  [[nodiscard]] uint32_t ndim() const { return static_cast<uint32_t>(extents_.size()); }
  [[nodiscard]] const std::vector<uint32_t>& extents() const { return extents_; }
  [[nodiscard]] uint32_t extent(uint32_t dim) const { return extents_[dim]; }
  [[nodiscard]] uint64_t size() const { return data_.size(); }
  [[nodiscard]] uint64_t stride(uint32_t dim) const { return strides_[dim]; }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double* raw() { return data_.data(); }
  [[nodiscard]] const double* raw() const { return data_.data(); }

  double& operator[](uint64_t flat) { return data_[flat]; }
  double operator[](uint64_t flat) const { return data_[flat]; }

  /// Element access by coordinates (bounds-checked in debug builds).
  double At(const std::vector<uint32_t>& coords) const;
  void Set(const std::vector<uint32_t>& coords, double value);

  uint64_t FlatIndex(const std::vector<uint32_t>& coords) const;

  /// Sum of all cells.
  double Total() const;

  /// True iff same extents and all cells within `tol` of each other.
  bool ApproxEquals(const Tensor& other, double tol = 1e-9) const;

  std::string ShapeString() const;

 private:
  std::vector<uint32_t> extents_;
  std::vector<uint64_t> strides_;
  std::vector<double> data_;

  void ComputeStrides();
};

}  // namespace vecube

#endif  // VECUBE_CUBE_TENSOR_H_
