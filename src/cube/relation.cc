#include "cube/relation.h"

namespace vecube {

Result<Relation> Relation::Make(std::vector<std::string> functional_names,
                                std::vector<std::string> measure_names) {
  if (functional_names.empty()) {
    return Status::InvalidArgument(
        "relation needs at least one functional attribute");
  }
  if (measure_names.empty()) {
    return Status::InvalidArgument(
        "relation needs at least one measure attribute");
  }
  Relation r;
  r.key_columns_.resize(functional_names.size());
  r.measure_columns_.resize(measure_names.size());
  r.functional_names_ = std::move(functional_names);
  r.measure_names_ = std::move(measure_names);
  return r;
}

Status Relation::Append(const std::vector<int64_t>& keys,
                        const std::vector<double>& measures) {
  if (keys.size() != key_columns_.size()) {
    return Status::InvalidArgument("wrong number of functional attributes");
  }
  if (measures.size() != measure_columns_.size()) {
    return Status::InvalidArgument("wrong number of measure attributes");
  }
  for (size_t i = 0; i < keys.size(); ++i) key_columns_[i].push_back(keys[i]);
  for (size_t i = 0; i < measures.size(); ++i) {
    measure_columns_[i].push_back(measures[i]);
  }
  ++num_rows_;
  return Status::OK();
}

uint32_t Dictionary::Encode(int64_t value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  const uint32_t idx = static_cast<uint32_t>(values_.size());
  index_.emplace(value, idx);
  values_.push_back(value);
  return idx;
}

Result<uint32_t> Dictionary::Lookup(int64_t value) const {
  auto it = index_.find(value);
  if (it == index_.end()) {
    return Status::NotFound("value " + std::to_string(value) +
                            " not present in dictionary");
  }
  return it->second;
}

}  // namespace vecube
