// Synthetic data generators for experiments and examples.
//
// The paper's experiments assign random access frequencies to views of a
// synthetic cube (Section 7.2); its costs are data-independent, but our
// executable assemblies and examples need cube contents. These generators
// produce deterministic, realistic fill patterns.

#ifndef VECUBE_CUBE_SYNTHETIC_H_
#define VECUBE_CUBE_SYNTHETIC_H_

#include <cstdint>

#include "cube/relation.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "util/result.h"
#include "util/rng.h"

namespace vecube {

/// Every cell i.i.d. uniform integer in [lo, hi] (integer-valued doubles so
/// reconstruction identities hold exactly).
Result<Tensor> UniformIntegerCube(const CubeShape& shape, Rng* rng,
                                  int64_t lo = 0, int64_t hi = 100);

/// A sparse cube: `nonzero_fraction` of cells get a uniform integer value,
/// the rest are 0. Cell positions drawn without clustering.
Result<Tensor> SparseRandomCube(const CubeShape& shape, Rng* rng,
                                double nonzero_fraction, int64_t lo = 1,
                                int64_t hi = 100);

/// A clustered cube: `num_clusters` Gaussian-ish blobs of mass, emulating
/// the locality of real OLAP fact data (sales concentrated on some
/// product/region/date combinations). Values are rounded to integers.
Result<Tensor> ClusteredCube(const CubeShape& shape, Rng* rng,
                             uint32_t num_clusters, double cluster_radius,
                             double peak = 100.0);

/// A synthetic star-schema-like fact relation: `num_rows` records with
/// Zipf-skewed keys per dimension and uniform integer measures, suitable
/// for CubeBuilder with kDirect mapping.
Result<Relation> SyntheticSalesRelation(const CubeShape& shape, Rng* rng,
                                        uint64_t num_rows, double key_skew);

}  // namespace vecube

#endif  // VECUBE_CUBE_SYNTHETIC_H_
