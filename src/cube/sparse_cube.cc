#include "cube/sparse_cube.h"

#include <algorithm>
#include <cmath>

namespace vecube {

Status SparseCube::Add(const std::vector<uint32_t>& coords, double value) {
  if (coords.size() != shape_.ndim()) {
    return Status::InvalidArgument("coordinate arity mismatch");
  }
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    if (coords[m] >= shape_.extent(m)) {
      return Status::OutOfRange("coordinate outside cube extent");
    }
  }
  const uint64_t flat = shape_.FlatIndex(coords);
  auto it = std::lower_bound(indices_.begin(), indices_.end(), flat);
  const size_t pos = static_cast<size_t>(it - indices_.begin());
  if (it != indices_.end() && *it == flat) {
    values_[pos] += value;
  } else {
    indices_.insert(it, flat);
    values_.insert(values_.begin() + static_cast<ptrdiff_t>(pos), value);
  }
  return Status::OK();
}

double SparseCube::Get(const std::vector<uint32_t>& coords) const {
  const uint64_t flat = shape_.FlatIndex(coords);
  auto it = std::lower_bound(indices_.begin(), indices_.end(), flat);
  if (it != indices_.end() && *it == flat) {
    return values_[static_cast<size_t>(it - indices_.begin())];
  }
  return 0.0;
}

Result<Tensor> SparseCube::Densify() const {
  Tensor dense;
  VECUBE_ASSIGN_OR_RETURN(dense, Tensor::Zeros(shape_.extents()));
  for (size_t i = 0; i < indices_.size(); ++i) {
    dense[indices_[i]] = values_[i];
  }
  return dense;
}

Result<SparseCube> SparseCube::FromDense(const CubeShape& shape,
                                         const Tensor& dense,
                                         double zero_tol) {
  if (dense.extents() != shape.extents()) {
    return Status::InvalidArgument("dense tensor extents do not match shape");
  }
  SparseCube sparse(shape);
  for (uint64_t flat = 0; flat < dense.size(); ++flat) {
    if (std::fabs(dense[flat]) > zero_tol) {
      sparse.indices_.push_back(flat);
      sparse.values_.push_back(dense[flat]);
    }
  }
  return sparse;
}

}  // namespace vecube
