#include "cube/csv.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace vecube {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

Result<int64_t> ParseInt(const std::string& field, uint64_t line_number) {
  if (field.empty()) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": empty integer field");
  }
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(field.c_str(), &end, 10);
  if (errno != 0 || end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": '" + field + "' is not an integer");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(const std::string& field, uint64_t line_number) {
  if (field.empty()) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": empty measure field");
  }
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(field.c_str(), &end);
  if (errno != 0 || end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": '" + field + "' is not a number");
  }
  return value;
}

}  // namespace

Result<Relation> LoadRelationCsv(const std::string& path,
                                 uint32_t num_functional,
                                 uint32_t num_measures,
                                 const CsvOptions& options) {
  if (num_functional == 0 || num_measures == 0) {
    return Status::InvalidArgument(
        "need at least one functional and one measure column");
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  const uint32_t total_columns = num_functional + num_measures;

  std::vector<std::string> functional_names, measure_names;
  std::string line;
  uint64_t line_number = 0;

  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument(path + ": missing header line");
    }
    ++line_number;
    const auto fields = SplitLine(line, options.delimiter);
    if (fields.size() != total_columns) {
      return Status::InvalidArgument(
          path + ": header has " + std::to_string(fields.size()) +
          " columns, expected " + std::to_string(total_columns));
    }
    for (uint32_t i = 0; i < num_functional; ++i) {
      functional_names.push_back(fields[i]);
    }
    for (uint32_t i = num_functional; i < total_columns; ++i) {
      measure_names.push_back(fields[i]);
    }
  } else {
    for (uint32_t i = 0; i < num_functional; ++i) {
      functional_names.push_back("key" + std::to_string(i));
    }
    for (uint32_t i = 0; i < num_measures; ++i) {
      measure_names.push_back("measure" + std::to_string(i));
    }
  }

  Relation relation;
  VECUBE_ASSIGN_OR_RETURN(
      relation, Relation::Make(std::move(functional_names),
                               std::move(measure_names)));

  std::vector<int64_t> keys(num_functional);
  std::vector<double> measures(num_measures);
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;  // tolerate trailing blank lines
    const auto fields = SplitLine(line, options.delimiter);
    if (fields.size() != total_columns) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": has " +
          std::to_string(fields.size()) + " columns, expected " +
          std::to_string(total_columns));
    }
    for (uint32_t i = 0; i < num_functional; ++i) {
      VECUBE_ASSIGN_OR_RETURN(keys[i], ParseInt(fields[i], line_number));
    }
    for (uint32_t i = 0; i < num_measures; ++i) {
      VECUBE_ASSIGN_OR_RETURN(
          measures[i], ParseDouble(fields[num_functional + i], line_number));
    }
    VECUBE_RETURN_NOT_OK(relation.Append(keys, measures));
  }
  return relation;
}

Status SaveRelationCsv(const Relation& relation, const std::string& path,
                       char delimiter) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  for (uint32_t i = 0; i < relation.num_functional(); ++i) {
    if (i > 0) out << delimiter;
    out << relation.functional_name(i);
  }
  for (uint32_t i = 0; i < relation.num_measures(); ++i) {
    out << delimiter << relation.measure_name(i);
  }
  out << '\n';
  std::ostringstream value;
  for (uint64_t row = 0; row < relation.num_rows(); ++row) {
    for (uint32_t i = 0; i < relation.num_functional(); ++i) {
      if (i > 0) out << delimiter;
      out << relation.key(i, row);
    }
    for (uint32_t i = 0; i < relation.num_measures(); ++i) {
      value.str("");
      value << relation.measure(i, row);
      out << delimiter << value.str();
    }
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace vecube
