#include "cube/synthetic.h"

#include <cmath>
#include <string>
#include <vector>

namespace vecube {

Result<Tensor> UniformIntegerCube(const CubeShape& shape, Rng* rng,
                                  int64_t lo, int64_t hi) {
  if (hi < lo) return Status::InvalidArgument("hi < lo");
  Tensor t;
  VECUBE_ASSIGN_OR_RETURN(t, Tensor::Zeros(shape.extents()));
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  for (uint64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<double>(lo + static_cast<int64_t>(rng->UniformU64(span)));
  }
  return t;
}

Result<Tensor> SparseRandomCube(const CubeShape& shape, Rng* rng,
                                double nonzero_fraction, int64_t lo,
                                int64_t hi) {
  if (nonzero_fraction < 0.0 || nonzero_fraction > 1.0) {
    return Status::InvalidArgument("nonzero_fraction must be in [0, 1]");
  }
  if (hi < lo) return Status::InvalidArgument("hi < lo");
  Tensor t;
  VECUBE_ASSIGN_OR_RETURN(t, Tensor::Zeros(shape.extents()));
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  for (uint64_t i = 0; i < t.size(); ++i) {
    if (rng->UniformDouble() < nonzero_fraction) {
      t[i] =
          static_cast<double>(lo + static_cast<int64_t>(rng->UniformU64(span)));
    }
  }
  return t;
}

Result<Tensor> ClusteredCube(const CubeShape& shape, Rng* rng,
                             uint32_t num_clusters, double cluster_radius,
                             double peak) {
  if (num_clusters == 0) {
    return Status::InvalidArgument("need at least one cluster");
  }
  if (cluster_radius <= 0.0) {
    return Status::InvalidArgument("cluster_radius must be positive");
  }
  Tensor t;
  VECUBE_ASSIGN_OR_RETURN(t, Tensor::Zeros(shape.extents()));
  const uint32_t d = shape.ndim();

  std::vector<std::vector<double>> centers(num_clusters,
                                           std::vector<double>(d));
  for (auto& c : centers) {
    for (uint32_t m = 0; m < d; ++m) {
      c[m] = rng->UniformDouble(0.0, static_cast<double>(shape.extent(m)));
    }
  }

  for (uint64_t flat = 0; flat < t.size(); ++flat) {
    const std::vector<uint32_t> coords = shape.Coords(flat);
    double value = 0.0;
    for (const auto& c : centers) {
      double dist2 = 0.0;
      for (uint32_t m = 0; m < d; ++m) {
        const double delta = static_cast<double>(coords[m]) - c[m];
        dist2 += delta * delta;
      }
      value += peak * std::exp(-dist2 / (2.0 * cluster_radius * cluster_radius));
    }
    t[flat] = std::round(value);
  }
  return t;
}

Result<Relation> SyntheticSalesRelation(const CubeShape& shape, Rng* rng,
                                        uint64_t num_rows, double key_skew) {
  std::vector<std::string> dims;
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    dims.push_back("dim" + std::to_string(m));
  }
  Relation relation;
  VECUBE_ASSIGN_OR_RETURN(relation, Relation::Make(dims, {"amount"}));

  // Pre-draw per-dimension Zipf weights, then sample keys by inverse CDF.
  std::vector<std::vector<double>> cdfs(shape.ndim());
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    std::vector<double> w = rng->ZipfWeights(shape.extent(m), key_skew);
    cdfs[m].resize(w.size());
    double acc = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
      acc += w[i];
      cdfs[m][i] = acc;
    }
    cdfs[m].back() = 1.0;
  }

  std::vector<int64_t> keys(shape.ndim());
  for (uint64_t row = 0; row < num_rows; ++row) {
    for (uint32_t m = 0; m < shape.ndim(); ++m) {
      const double u = rng->UniformDouble();
      const auto& cdf = cdfs[m];
      size_t lo = 0, hi = cdf.size() - 1;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (cdf[mid] < u) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      keys[m] = static_cast<int64_t>(lo);
    }
    const double amount = static_cast<double>(1 + rng->UniformU64(500));
    VECUBE_RETURN_NOT_OK(relation.Append(keys, {amount}));
  }
  return relation;
}

}  // namespace vecube
