// CSV ingestion for relations.
//
// Loads a delimited text file into a Relation: the first
// `num_functional` columns are int64 functional attributes, the remaining
// `num_measures` columns are double measures. Strict parsing — malformed
// rows produce errors with line numbers, not silent skips.

#ifndef VECUBE_CUBE_CSV_H_
#define VECUBE_CUBE_CSV_H_

#include <cstdint>
#include <string>

#include "cube/relation.h"
#include "util/result.h"

namespace vecube {

struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (column headers). When true, header names are
  /// used for the relation's attribute names.
  bool has_header = true;
};

/// Parses `path` into a Relation with the given column split.
Result<Relation> LoadRelationCsv(const std::string& path,
                                 uint32_t num_functional,
                                 uint32_t num_measures,
                                 const CsvOptions& options = {});

/// Writes a Relation out as CSV (header always included).
Status SaveRelationCsv(const Relation& relation, const std::string& path,
                       char delimiter = ',');

}  // namespace vecube

#endif  // VECUBE_CUBE_CSV_H_
