// Relation: the relational substrate of Section 2.
//
// "the data set is initially stored in a relational table R that has d
// functional attributes and at least one measure attribute." We model R as
// a column-oriented table with int64 key columns (the functional
// attributes) and one or more double measure columns, and keep per-column
// dictionaries so arbitrary attribute domains can be mapped onto the
// 0..n_m-1 index space of the cube.

#ifndef VECUBE_CUBE_RELATION_H_
#define VECUBE_CUBE_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace vecube {

/// Column-oriented relational table: d functional (dimension key)
/// attributes of type int64 and >= 1 measure attributes of type double.
class Relation {
 public:
  /// Creates an empty relation with the given attribute names.
  static Result<Relation> Make(std::vector<std::string> functional_names,
                               std::vector<std::string> measure_names);

  uint32_t num_functional() const {
    return static_cast<uint32_t>(functional_names_.size());
  }
  uint32_t num_measures() const {
    return static_cast<uint32_t>(measure_names_.size());
  }
  [[nodiscard]] uint64_t num_rows() const { return num_rows_; }

  const std::string& functional_name(uint32_t i) const {
    return functional_names_[i];
  }
  const std::string& measure_name(uint32_t i) const {
    return measure_names_[i];
  }

  /// Appends one record. `keys` must have num_functional() entries and
  /// `measures` num_measures() entries.
  Status Append(const std::vector<int64_t>& keys,
                const std::vector<double>& measures);

  int64_t key(uint32_t column, uint64_t row) const {
    return key_columns_[column][row];
  }
  double measure(uint32_t column, uint64_t row) const {
    return measure_columns_[column][row];
  }

  const std::vector<int64_t>& key_column(uint32_t column) const {
    return key_columns_[column];
  }
  const std::vector<double>& measure_column(uint32_t column) const {
    return measure_columns_[column];
  }

 private:
  std::vector<std::string> functional_names_;
  std::vector<std::string> measure_names_;
  std::vector<std::vector<int64_t>> key_columns_;
  std::vector<std::vector<double>> measure_columns_;
  uint64_t num_rows_ = 0;
};

/// Maps raw int64 attribute values to dense cube indices in first-seen
/// order, like a dictionary encoding.
class Dictionary {
 public:
  /// Returns the index for `value`, inserting it if new.
  uint32_t Encode(int64_t value);

  /// Returns the index for `value` or an error if unseen.
  Result<uint32_t> Lookup(int64_t value) const;

  /// Value for a given index.
  [[nodiscard]] int64_t Decode(uint32_t index) const { return values_[index]; }

  [[nodiscard]] uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

 private:
  std::unordered_map<int64_t, uint32_t> index_;
  std::vector<int64_t> values_;
};

}  // namespace vecube

#endif  // VECUBE_CUBE_RELATION_H_
