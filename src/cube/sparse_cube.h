// SparseCube: coordinate-list representation for sparse data cubes.
//
// The paper motivates sparsity ("the nature of the data in databases is
// often such that it results in sparse and inefficient data cubes" [10])
// and notes that wavelet-packet bases "have great capacity for compressing
// potentially sparse data cubes" (Section 4.3). SparseCube is the compact
// ingest/interchange format; decomposition operates on the densified form.

#ifndef VECUBE_CUBE_SPARSE_CUBE_H_
#define VECUBE_CUBE_SPARSE_CUBE_H_

#include <cstdint>
#include <vector>

#include "cube/shape.h"
#include "cube/tensor.h"
#include "util/result.h"

namespace vecube {

/// COO-format sparse cube: sorted unique flat indices with values.
class SparseCube {
 public:
  explicit SparseCube(CubeShape shape) : shape_(std::move(shape)) {}

  [[nodiscard]] const CubeShape& shape() const { return shape_; }
  [[nodiscard]] uint64_t num_nonzero() const { return indices_.size(); }

  /// Fraction of cells that are non-zero.
  double density() const {
    return static_cast<double>(indices_.size()) /
           static_cast<double>(shape_.volume());
  }

  /// Adds `value` to the cell at `coords` (accumulating SUM semantics).
  Status Add(const std::vector<uint32_t>& coords, double value);

  /// Value at `coords` (0 for absent cells).
  double Get(const std::vector<uint32_t>& coords) const;

  /// Converts to a dense Tensor.
  Result<Tensor> Densify() const;

  /// Builds a SparseCube from the non-zero cells of a dense tensor whose
  /// extents match `shape`.
  static Result<SparseCube> FromDense(const CubeShape& shape,
                                      const Tensor& dense,
                                      double zero_tol = 0.0);

  [[nodiscard]] const std::vector<uint64_t>& indices() const { return indices_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  // Kept sorted by flat index; Add uses binary search + insert, which is
  // adequate for the bulk-build-then-read pattern of the experiments.
  CubeShape shape_;
  std::vector<uint64_t> indices_;
  std::vector<double> values_;
};

}  // namespace vecube

#endif  // VECUBE_CUBE_SPARSE_CUBE_H_
