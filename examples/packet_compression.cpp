// packet_compression: wavelet-packet bases as sparse-cube compressors.
//
// Section 4.3 observes that "by selecting the bases that best isolate the
// non-zero data from the zero areas of the data cube, the view element
// wavelet packet basis can represent the data cube in a compact form",
// but leaves it unexplored. This example runs the Coifman-Wickerhauser
// best-basis search over the view element graph on cubes of varying
// sparsity and smoothness, and compares the number of significant
// coefficients against raw non-zeros and the fixed wavelet basis — while
// verifying the chosen basis still reconstructs the cube exactly.

#include <cmath>
#include <cstdio>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/synthetic.h"
#include "select/best_basis.h"
#include "util/rng.h"

using namespace vecube;  // NOLINT — example brevity

namespace {

uint64_t CountAbove(const Tensor& t, double threshold) {
  uint64_t n = 0;
  for (uint64_t i = 0; i < t.size(); ++i) {
    if (std::fabs(t[i]) > threshold) ++n;
  }
  return n;
}

void Report(const char* name, const CubeShape& shape, const Tensor& cube,
            double threshold) {
  auto best = SelectCompressionBasis(shape, cube, threshold);
  if (!best.ok()) {
    std::fprintf(stderr, "best-basis failed: %s\n",
                 best.status().ToString().c_str());
    std::exit(1);
  }

  // Fixed wavelet basis comparator: count significant coefficients.
  ElementComputer computer(shape, &cube);
  uint64_t wavelet_significant = 0;
  for (const ElementId& id : WaveletBasisSet(shape)) {
    auto data = computer.Compute(id);
    wavelet_significant += CountAbove(*data, threshold);
  }

  // Verify exact reconstruction from the selected basis.
  auto store = computer.Materialize(best->basis);
  AssemblyEngine engine(&*store);
  auto back = engine.Assemble(ElementId::Root(shape.ndim()));
  const bool exact = back.ok() && back->ApproxEquals(cube, 1e-9);

  std::printf("%-26s %10llu %12llu %12llu %9zu   %s\n", name,
              static_cast<unsigned long long>(best->cube_nonzeros),
              static_cast<unsigned long long>(wavelet_significant),
              static_cast<unsigned long long>(best->significant_coefficients),
              best->basis.size(), exact ? "exact" : "BROKEN");
}

}  // namespace

int main() {
  auto shape = CubeShape::Make({32, 32});
  if (!shape.ok()) return 1;
  Rng rng(123);

  std::printf("Wavelet-packet compression of 32x32 cubes "
              "(threshold |c| > 0.5):\n\n");
  std::printf("%-26s %10s %12s %12s %9s   %s\n", "cube", "nonzeros",
              "wavelet", "best packet", "elements", "reconstruction");
  std::printf("--------------------------------------------------------------"
              "--------------------\n");

  auto sparse = SparseRandomCube(*shape, &rng, 0.03, 1, 9);
  Report("sparse (3% random)", *shape, *sparse, 0.5);

  auto clustered = ClusteredCube(*shape, &rng, 2, 2.5, 40.0);
  Report("clustered (2 blobs)", *shape, *clustered, 0.5);

  auto constant =
      Tensor::FromData(std::vector<uint32_t>{32, 32},
                       std::vector<double>(1024, 7.0));
  Report("constant", *shape, *constant, 0.5);

  auto dense = UniformIntegerCube(*shape, &rng, 1, 9);
  Report("dense uniform", *shape, *dense, 0.5);

  std::printf("\nThe adaptive packet basis never stores more significant "
              "coefficients than the raw cube or the fixed wavelet basis, "
              "and smooth/clustered data collapses dramatically.\n");
  return 0;
}
