// Quickstart: the vecube pipeline in one file.
//
//   1. Load a fact table (Relation) and build a dense SUM data cube.
//   2. Describe the expected query workload over aggregated views.
//   3. Select the optimal non-redundant view element basis (Algorithm 1)
//      and materialize it — same storage as the cube, less work per query.
//   4. Assemble views dynamically and compare the measured operation
//      counts against serving everything from the raw cube.

#include <cstdio>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/cube_builder.h"
#include "select/algorithm1.h"
#include "workload/population.h"

using namespace vecube;  // NOLINT — example brevity

int main() {
  // --- 1. A tiny fact table: (product, region) -> revenue. ------------
  auto relation = Relation::Make({"product", "region"}, {"revenue"});
  if (!relation.ok()) return 1;
  const struct {
    int64_t product, region;
    double revenue;
  } facts[] = {
      {0, 0, 120}, {0, 1, 80},  {1, 0, 200}, {1, 3, 40},
      {2, 2, 310}, {2, 3, 90},  {3, 1, 150}, {3, 2, 60},
      {0, 0, 30},  {1, 0, 100}, {2, 2, 45},  {3, 3, 75},
  };
  for (const auto& f : facts) {
    if (!relation->Append({f.product, f.region}, {f.revenue}).ok()) return 1;
  }

  auto shape = CubeShape::Make({4, 4});  // 4 products x 4 regions
  auto built = CubeBuilder::Build(*relation, *shape);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("Built a %s data cube from %llu facts; total revenue %.0f\n",
              shape->ToString().c_str(),
              static_cast<unsigned long long>(relation->num_rows()),
              built->cube.Total());

  // --- 2. The workload: mostly per-product and grand totals. ----------
  auto by_product = ElementId::AggregatedView(0b10, *shape);  // sum regions
  auto by_region = ElementId::AggregatedView(0b01, *shape);   // sum products
  auto grand = ElementId::AggregatedView(0b11, *shape);
  auto population = FixedPopulation(
      {{*by_product, 0.6}, {*grand, 0.3}, {*by_region, 0.1}}, *shape);
  if (!population.ok()) return 1;

  // --- 3. Select and materialize the optimal element basis. -----------
  auto selection = SelectMinCostBasis(*shape, *population);
  if (!selection.ok()) return 1;
  std::printf("\nAlgorithm 1 selected %zu view elements "
              "(predicted cost %.1f ops/query):\n",
              selection->basis.size(), selection->predicted_cost);
  for (const ElementId& id : selection->basis) {
    std::printf("  %s  vol=%llu%s\n", id.ToString().c_str(),
                static_cast<unsigned long long>(id.DataVolume(*shape)),
                id.IsAggregatedView(*shape) ? "  (aggregated view)" : "");
  }

  ElementComputer computer(*shape, &built->cube);
  auto store = computer.Materialize(selection->basis);
  if (!store.ok()) return 1;
  std::printf("Materialized store: %llu cells (cube itself: %llu)\n",
              static_cast<unsigned long long>(store->StorageCells()),
              static_cast<unsigned long long>(shape->volume()));

  // --- 4. Assemble views and compare measured work. --------------------
  auto cube_store = computer.Materialize(CubeOnlySet(*shape));
  AssemblyEngine tuned(&*store), baseline(&*cube_store);

  std::printf("\n%-22s %-16s %-16s\n", "query", "ops from basis",
              "ops from cube");
  for (const auto& [name, view] :
       {std::pair{"revenue by product", *by_product},
        std::pair{"revenue by region", *by_region},
        std::pair{"grand total", *grand}}) {
    OpCounter tuned_ops, base_ops;
    auto a = tuned.Assemble(view, &tuned_ops);
    auto b = baseline.Assemble(view, &base_ops);
    if (!a.ok() || !b.ok()) return 1;
    if (!a->ApproxEquals(*b, 1e-9)) {
      std::fprintf(stderr, "answers disagree!\n");
      return 1;
    }
    std::printf("%-22s %-16llu %-16llu\n", name,
                static_cast<unsigned long long>(tuned_ops.adds),
                static_cast<unsigned long long>(base_ops.adds));
  }

  // Show one actual answer.
  auto answer = tuned.Assemble(*by_product);
  std::printf("\nRevenue by product: ");
  for (uint32_t p = 0; p < 4; ++p) {
    std::printf("P%u=%.0f ", p, answer->At({p, 0}));
  }
  std::printf("\n");
  return 0;
}
