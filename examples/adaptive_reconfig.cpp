// adaptive_reconfig: the paper's titular capability — dynamic assembly
// with online adaptation.
//
// Query traffic starts concentrated on "sales by product" dashboards,
// then shifts to "sales by week" reporting. The DynamicAssembler observes
// access frequencies, detects the drift, re-runs Algorithm 1 against the
// live distribution, and migrates the materialized element set by
// assembling the new elements from the old ones. The per-phase average
// operation counts show the system re-tuning itself.

#include <cstdio>

#include "cube/shape.h"
#include "cube/synthetic.h"
#include "select/dynamic.h"
#include "util/rng.h"

using namespace vecube;  // NOLINT — example brevity

namespace {

double RunPhase(DynamicAssembler* assembler, const ElementId& hot,
                const ElementId& cold, int queries, Rng* rng) {
  uint64_t total_ops = 0;
  for (int i = 0; i < queries; ++i) {
    // 90% of traffic on the hot view, 10% on the cold one.
    const ElementId& view = (rng->UniformDouble() < 0.9) ? hot : cold;
    OpCounter ops;
    auto answer = assembler->Query(view, &ops);
    if (!answer.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answer.status().ToString().c_str());
      std::exit(1);
    }
    total_ops += ops.adds;
  }
  return static_cast<double>(total_ops) / queries;
}

}  // namespace

int main() {
  auto shape = CubeShape::Make({16, 8, 32});  // product x store x week
  if (!shape.ok()) return 1;
  Rng data_rng(1);
  auto cube = UniformIntegerCube(*shape, &data_rng, 0, 50);
  if (!cube.ok()) return 1;

  DynamicOptions options;
  options.min_queries_between_reconfigs = 24;
  options.drift_threshold = 0.35;
  options.access_decay = 0.95;
  // Allow 1.5x the cube volume so hot views can be kept redundantly.
  options.storage_budget_cells = shape->volume() * 3 / 2;
  auto assembler = DynamicAssembler::Make(*shape, *cube, options);
  if (!assembler.ok()) return 1;

  // Phase 1: product dashboards (aggregate stores and weeks).
  auto by_product = ElementId::AggregatedView(0b110, *shape);
  // Phase 2: weekly reports (aggregate products and stores).
  auto by_week = ElementId::AggregatedView(0b011, *shape);
  // A rarely-used drill-down present in both phases.
  auto by_product_week = ElementId::AggregatedView(0b010, *shape);

  Rng traffic(42);
  std::printf("Cube %s; starting store: {A}, %llu cells\n\n",
              shape->ToString().c_str(),
              static_cast<unsigned long long>(
                  (*assembler)->store().StorageCells()));

  std::printf("%-34s %14s %16s %10s\n", "phase", "avg ops/query",
              "store cells", "reconfigs");
  const struct {
    const char* name;
    const ElementId* hot;
  } phases[] = {
      {"1: product dashboards (cold start)", &*by_product},
      {"1b: product dashboards (warmed)", &*by_product},
      {"2: weekly reports (drift!)", &*by_week},
      {"2b: weekly reports (re-tuned)", &*by_week},
  };
  for (const auto& phase : phases) {
    const double avg =
        RunPhase(assembler->get(), *phase.hot, *by_product_week, 200,
                 &traffic);
    std::printf("%-34s %14.1f %16llu %10llu\n", phase.name, avg,
                static_cast<unsigned long long>(
                    (*assembler)->store().StorageCells()),
                static_cast<unsigned long long>(
                    (*assembler)->reconfiguration_count()));
  }

  std::printf("\nServed %llu queries with %llu reconfigurations; final "
              "store holds %zu elements.\n",
              static_cast<unsigned long long>((*assembler)->queries_served()),
              static_cast<unsigned long long>(
                  (*assembler)->reconfiguration_count()),
              (*assembler)->store().size());
  std::printf("Ops per query dropped within each phase after the assembler "
              "adapted to the observed access pattern.\n");
  return 0;
}
