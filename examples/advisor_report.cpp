// advisor_report: what-if storage/performance analysis for a DBA.
//
// Given a cube and an anticipated workload, sweep storage budgets and
// print the configurations the optimizer would pick at each, alongside
// the classical alternatives — including the HRU view-lattice greedy that
// the paper positions view elements against.

#include <cstdio>

#include "select/advisor.h"
#include "select/lattice.h"
#include "util/rng.h"
#include "workload/population.h"

using namespace vecube;  // NOLINT — example brevity

int main() {
  auto shape = CubeShape::Make({16, 16, 4});
  if (!shape.ok()) return 1;
  Rng rng(2026);
  auto population = ZipfViewPopulation(*shape, &rng, 1.1);
  if (!population.ok()) return 1;

  std::printf("Advisor report for a %s cube (Vol = %llu cells)\n",
              shape->ToString().c_str(),
              static_cast<unsigned long long>(shape->volume()));
  std::printf("Workload: Zipf(1.1) over the %zu aggregated views\n\n",
              population->size());

  AdvisorOptions options;
  const uint64_t vol = shape->volume();
  options.budgets = {vol + vol / 8, vol + vol / 4, vol + vol / 2, 2 * vol};
  auto report = AdviseConfiguration(*shape, *population, options);
  if (!report.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  // The HRU lattice view for contrast (uniform load, linear cost model).
  std::printf("HRU view-lattice greedy (classical comparator):\n");
  for (uint32_t k : {1u, 2u, 4u}) {
    LatticeGreedyOptions lattice_options;
    lattice_options.max_views = k;
    lattice_options.benefit_per_unit_space = true;
    auto lattice = HruGreedySelect(*shape, lattice_options);
    if (!lattice.ok()) return 1;
    std::printf("  k=%u views: total scan cost %llu, extra storage %llu "
                "cells (always in addition to the cube)\n",
                k, static_cast<unsigned long long>(lattice->total_cost),
                static_cast<unsigned long long>(
                    lattice->extra_storage_cells));
  }
  std::printf("\nNote the structural contrast: every lattice configuration "
              "is expansive (cube + views), while the element basis covers "
              "the whole cube in exactly Vol(A) cells.\n");
  return 0;
}
