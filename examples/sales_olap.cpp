// sales_olap: a realistic MOLAP scenario on a star-schema fact table.
//
// A retail cube (product x store x week) is loaded from a synthetic
// Zipf-skewed sales relation. The example walks the three query families
// the paper's introduction motivates:
//   * aggregated views ("total sales per product"),
//   * range-aggregations ("sales of products 3-10 in weeks 12-47"),
//   * drill-downs served by synthesis (two-way dependencies).
// A Gaussian-pyramid element set is materialized on top of the workload-
// selected basis so range queries hit the Eq. 40 fast path.

#include <cstdio>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/cube_builder.h"
#include "cube/synthetic.h"
#include "range/prefix_baseline.h"
#include "range/range_engine.h"
#include "select/algorithm1.h"
#include "util/rng.h"
#include "workload/population.h"

using namespace vecube;  // NOLINT — example brevity

int main() {
  // 16 products x 8 stores x 64 weeks.
  auto shape = CubeShape::Make({16, 8, 64});
  if (!shape.ok()) return 1;
  Rng rng(2026);
  auto relation = SyntheticSalesRelation(*shape, &rng, 50000, 1.05);
  if (!relation.ok()) return 1;
  auto built = CubeBuilder::Build(*relation, *shape);
  if (!built.ok()) return 1;
  std::printf("Loaded %llu sales records into a %s cube (%llu cells, "
              "total sales %.0f)\n",
              static_cast<unsigned long long>(relation->num_rows()),
              shape->ToString().c_str(),
              static_cast<unsigned long long>(shape->volume()),
              built->cube.Total());

  // ---- Aggregated views under a skewed workload. ----------------------
  Rng wrng(7);
  auto population = ZipfViewPopulation(*shape, &wrng, 1.3);
  if (!population.ok()) return 1;
  auto selection = SelectMinCostBasis(*shape, *population);
  if (!selection.ok()) return 1;

  ElementComputer computer(*shape, &built->cube);
  auto store = computer.Materialize(selection->basis);
  if (!store.ok()) return 1;
  AssemblyEngine engine(&*store);

  std::printf("\nWorkload-selected basis: %zu elements, storage %llu cells "
              "(= cube volume, non-expansive)\n",
              selection->basis.size(),
              static_cast<unsigned long long>(store->StorageCells()));

  OpCounter tuned_ops;
  auto cube_store = computer.Materialize(CubeOnlySet(*shape));
  AssemblyEngine baseline(&*cube_store);
  OpCounter base_ops;
  for (const QuerySpec& q : population.value().queries()) {
    if (!engine.Assemble(q.view, &tuned_ops).ok()) return 1;
    if (!baseline.Assemble(q.view, &base_ops).ok()) return 1;
  }
  std::printf("Answering all %zu aggregated views once: %llu ops from the "
              "basis vs %llu from the cube (%.1f%%)\n",
              population->size(),
              static_cast<unsigned long long>(tuned_ops.adds),
              static_cast<unsigned long long>(base_ops.adds),
              100.0 * static_cast<double>(tuned_ops.adds) /
                  static_cast<double>(base_ops.adds));

  // ---- A concrete business question. ----------------------------------
  auto by_product = engine.AssembleView(0b110);  // aggregate stores & weeks
  if (!by_product.ok()) return 1;
  uint32_t best_product = 0;
  for (uint32_t p = 1; p < 16; ++p) {
    if (by_product->At({p, 0, 0}) >
        by_product->At({best_product, 0, 0})) {
      best_product = p;
    }
  }
  std::printf("\nBest-selling product: #%u with %.0f total sales\n",
              best_product, by_product->At({best_product, 0, 0}));

  // ---- Range aggregation over the intermediate pyramid. ---------------
  auto pyramid_store =
      computer.Materialize(ViewElementGraph(*shape).IntermediateElements());
  if (!pyramid_store.ok()) return 1;
  RangeEngine ranges(&*pyramid_store, MissingElementPolicy::kError);
  auto prefix = PrefixSumCube::Build(*shape, built->cube);
  if (!prefix.ok()) return 1;

  // "Sales of products 3..10, all stores, weeks 12..47."
  auto range = RangeSpec::Make({3, 0, 12}, {8, 8, 36}, *shape);
  if (!range.ok()) return 1;
  RangeQueryStats stats;
  auto fast = ranges.RangeSum(*range, &stats);
  uint64_t naive_reads = 0;
  auto naive = NaiveRangeSum(built->cube, *shape, *range, &naive_reads);
  uint64_t prefix_reads = 0;
  auto via_prefix = prefix->RangeSum(*range, &prefix_reads);
  if (!fast.ok() || !naive.ok() || !via_prefix.ok()) return 1;

  std::printf("\nRange query %s:\n", range->ToString().c_str());
  std::printf("  view-element pyramid : %.0f  (%llu cell reads)\n", *fast,
              static_cast<unsigned long long>(stats.cell_reads));
  std::printf("  naive cube scan      : %.0f  (%llu cell reads)\n", *naive,
              static_cast<unsigned long long>(naive_reads));
  std::printf("  prefix-sum baseline  : %.0f  (%llu cell reads, but %llu "
              "extra cells of rigid storage)\n",
              *via_prefix, static_cast<unsigned long long>(prefix_reads),
              static_cast<unsigned long long>(shape->volume()));
  if (*fast != *naive || *via_prefix != *naive) {
    std::fprintf(stderr, "range answers disagree!\n");
    return 1;
  }

  // ---- Drill-down: reconstruct a finer view from coarser elements. ----
  // The weekly-by-product intermediate (weeks at level 2 = 4-week months)
  // is synthesized/aggregated on demand from whatever is materialized.
  auto monthly = ElementId::Intermediate({0, 3, 2}, *shape);
  OpCounter drill_ops;
  AssemblyEngine pyramid_engine(&*pyramid_store);
  auto drill = pyramid_engine.Assemble(*monthly, &drill_ops);
  if (!drill.ok()) return 1;
  std::printf("\nDrill-down to 4-week buckets: %s tensor in %llu ops "
              "(free — already in the pyramid)\n",
              drill->ShapeString().c_str(),
              static_cast<unsigned long long>(drill_ops.adds));
  return 0;
}
