#!/usr/bin/env python3
"""vecube_check: project concurrency contracts as a static checker.

Encodes the rules that generic analysis (clang-tidy, -Wthread-safety)
cannot express because they are *project* invariants, not language ones.
Two backends share one rule engine:

  * AST backend — used automatically when the Python libclang binding
    (``clang.cindex``) is importable and a ``compile_commands.json`` is
    found (CMake exports one; see CMAKE_EXPORT_COMPILE_COMMANDS). It
    builds the function index and call graph from the real AST.
  * Lexer backend — a self-contained fallback with no dependencies
    beyond the standard library: comment-aware tokenizing plus
    brace-matched function extraction. It over-approximates the call
    graph (unqualified calls may match more than one definition), which
    is the safe direction for every rule here.

Both backends feed the same rule engine; the purely textual rules
(order-comment, naked-sync-primitives, detached-threads,
escape-hatch-allowlist) behave identically under either.

Rules (suppress a single line with ``// vecube-check: disable=<rule>``):

  hit-path-no-locks      No mutex acquisition, condition wait, or fill
                         wait may be *reachable* from the ViewCache hit
                         path (ViewCache::FindPinned / LookupPinned /
                         Lookup). Call-graph reachability, not a per-body
                         regex: a helper that locks is flagged even if
                         the root body looks clean. Replaces the old
                         serve-lock-free-reads regex rule in vecube_lint.
  epoch-pin-raii         Epoch pins are RAII-only. EpochDomain::Acquire /
                         EpochDomain::Pin may appear only in
                         src/util/epoch.{h,cc} and
                         src/serve/view_cache.{h,cc}; every Acquire()
                         call must initialize a local Pin on the same
                         statement; the only sanctioned long-lived pin
                         member is ViewCache::ReadHandle::pin_ (the RAII
                         handle itself). Pins squirreled away in other
                         members would stall epoch reclamation forever.
  order-comment          Every line whose code mentions memory_order
                         must carry an ``order:`` justification comment
                         on the same line or within the 6 lines above.
                         Un-annotated orderings rot into cargo cult.
  no-blocking-under-shard-lock
                         Inside a scope holding a ViewCache shard mutex
                         (``MutexLock l(shard...mu)``), no blocking call:
                         no condition wait, no WaitFill, no file I/O or
                         fsync, no sleeps — and no second lock (the
                         shard tier is the innermost lock level; see
                         DESIGN.md §12).
  no-unbounded-wait      No bare ``CondVar::Wait`` may be *reachable*
                         from the serving path (WaitFill, ExecuteShared,
                         Admit, the session/dynamic/range query entry
                         points, ParallelFor): every wait a query can
                         block on must be a bounded ``WaitFor`` slice so
                         deadlines and cancellation are always honored
                         (DESIGN.md §13). Call-graph reachability, like
                         hit-path-no-locks.
  no-shared-scratch-on-shard-path
                         The shard hot path (ThreadedShardExecutor::
                         RunTask and the serial cascade it drives,
                         internal::ExecuteCascadeSerial) owns a private
                         per-lane ShardScratch: nothing *reachable* from
                         it may touch the mutex-protected shared
                         ScratchArena or acquire any lock — that is the
                         whole point of the shard decomposition
                         (DESIGN.md §14). Call-graph reachability, like
                         hit-path-no-locks.
  naked-sync-primitives  src/ outside util/sync.h may not name raw
                         std::mutex / condition_variable / lock_guard /
                         unique_lock / scoped_lock / shared_lock (or
                         include their headers): the annotated wrappers
                         in util/sync.h are the only sanctioned
                         primitives, otherwise thread-safety analysis
                         has blind spots. std::thread is allowed only in
                         util/thread_pool.{h,cc} (std::this_thread and
                         std::thread::hardware_concurrency are fine
                         anywhere).
  detached-threads       ``.detach()`` is banned in src/: a detached
                         thread outlives every shutdown contract in the
                         tree.
  escape-hatch-allowlist Every use of VECUBE_NO_THREAD_SAFETY_ANALYSIS
                         outside its definition in util/sync.h must be
                         registered in tools/thread_safety_allowlist.txt
                         with a justification.

Usage:
  tools/vecube_check.py [--root DIR] [--backend auto|ast|lexer]
                        [--compile-commands PATH] [--list-rules]
                        [--canaries DIR] [paths...]

``--canaries DIR`` flips to self-test mode: each *.cc file under DIR
declares, in its leading comments, the virtual path it should be checked
as and the rule(s) it must trip:

  // vecube-check-as: src/serve/view_cache.cc
  // vecube-check-expect: hit-path-no-locks

The run fails unless every canary trips every expected rule — proof the
checker still has teeth.

Exits 0 when clean (or all canaries trip), 1 on findings (or a silent
canary), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = (
    "hit-path-no-locks",
    "epoch-pin-raii",
    "order-comment",
    "no-blocking-under-shard-lock",
    "no-unbounded-wait",
    "no-shared-scratch-on-shard-path",
    "naked-sync-primitives",
    "detached-threads",
    "escape-hatch-allowlist",
)

DISABLE_RE = re.compile(r"//\s*vecube-check:\s*disable=([\w,-]+)")

# --- hit-path-no-locks -------------------------------------------------
HIT_PATH_ROOTS = (
    "ViewCache::FindPinned",
    "ViewCache::LookupPinned",
    "ViewCache::Lookup",
)
# Anything that acquires, waits, or blocks. The hit path may touch
# atomics and epoch pins only.
HIT_PATH_BAN_RE = re.compile(
    r"\b(?:MutexLock|WriterLock|ReaderLock)\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|(?:\.|->)\s*(?:Lock|LockShared|lock|try_lock|lock_shared)\s*\("
    r"|(?:\.|->)\s*Wait(?:For)?\s*\("
    r"|\bWaitFill\s*\("
)

# --- no-shared-scratch-on-shard-path -----------------------------------
# The per-shard hot path: one gather + the whole serial cascade, run on
# a claimed lane's private ShardScratch. Reaching the shared (mutexed)
# ScratchArena — or any lock at all — from here would serialize the
# shards the decomposition exists to keep independent (DESIGN.md §14).
SHARD_SCRATCH_ROOTS = (
    "ThreadedShardExecutor::RunTask",
    "internal::ExecuteCascadeSerial",
)
SHARD_SCRATCH_BAN_RE = re.compile(
    r"\bScratchArena\b"
    r"|\b(?:MutexLock|WriterLock|ReaderLock)\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|(?:\.|->)\s*(?:Lock|LockShared|lock|try_lock|lock_shared)\s*\("
    r"|(?:\.|->)\s*(?:Acquire)\s*\("
)

# --- no-unbounded-wait -------------------------------------------------
# Everywhere a query can block. A bare `.Wait(` reachable from any of
# these can outlive the query's deadline; only timed `WaitFor` slices
# (re-checking the QueryContext each wake) are allowed (DESIGN.md §13).
SERVING_WAIT_ROOTS = (
    "ViewCache::WaitFill",
    "AssemblyEngine::ExecuteShared",
    "AdmissionController::Admit",
    "AdmissionController::Drain",
    "OlapSession::Element",
    "OlapSession::Query",
    "OlapSession::RangeSum",
    "DynamicAssembler::Query",
    "RangeEngine::RangeSum",
    "ElementServer::Serve",
    "ThreadPool::ParallelFor",
)
# `.Wait(` / `->Wait(` exactly — WaitFor( and WaitFill( do not match.
UNBOUNDED_WAIT_RE = re.compile(r"(?:\.|->)\s*Wait\s*\(")

# --- epoch-pin-raii ----------------------------------------------------
EPOCH_PIN_FILES = {
    "src/util/epoch.h",
    "src/util/epoch.cc",
    "src/serve/view_cache.h",
    "src/serve/view_cache.cc",
}
EPOCH_TOKEN_RE = re.compile(r"\bEpochDomain::(?:Acquire|Pin)\b")
ACQUIRE_CALL_RE = re.compile(r"\bEpochDomain::Acquire\s*\(")
ACQUIRE_RAII_RE = re.compile(
    r"\b(?:EpochDomain::)?Pin\s+\w+\s*=\s*EpochDomain::Acquire\s*\(")
PIN_MEMBER_RE = re.compile(r"\bPin\s+(\w+_)\s*[;{=]")
PIN_MEMBER_ALLOWED = {("src/serve/view_cache.h", "pin_")}

# --- order-comment -----------------------------------------------------
ORDER_WINDOW = 6  # lines above (inclusive) that may carry the comment
ORDER_TOKEN_RE = re.compile(r"\bmemory_order")
ORDER_COMMENT_RE = re.compile(r"order:")

# --- no-blocking-under-shard-lock -------------------------------------
SHARD_LOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*[\w.>-]*shard[\w.>-]*mu")
BLOCKING_RE = re.compile(
    r"(?:\.|->)\s*Wait(?:For)?\s*\("
    r"|\bWaitFill\s*\("
    r"|\bsleep(?:_for|_until)?\s*\("
    r"|\bstd::this_thread\b"
    r"|\b(?:fopen|fread|fwrite|fflush|fsync|fdatasync|open|read|write)\s*\("
    r"|(?:\.|->)\s*(?:Sync|Flush|Append)\s*\("
    r"|\bstd::[io]?fstream\b"
)
NESTED_LOCK_RE = re.compile(r"\b(?:MutexLock|WriterLock|ReaderLock)\s+\w+\s*\(")

# --- naked-sync-primitives / detached-threads -------------------------
SYNC_ALLOWED_FILE = "src/util/sync.h"
NAKED_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)
THREAD_ALLOWED_FILES = {"src/util/thread_pool.h", "src/util/thread_pool.cc"}
# std::thread the *type*; the nested non-spawning utilities are fine.
NAKED_THREAD_RE = re.compile(
    r"\bstd::thread\b(?!\s*::\s*(?:hardware_concurrency|id)\b)")
DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(\s*\)")

# --- escape-hatch-allowlist -------------------------------------------
ESCAPE_HATCH = "VECUBE_NO_THREAD_SAFETY_ANALYSIS"
ALLOWLIST_PATH = "tools/thread_safety_allowlist.txt"

KEYWORDS = frozenset(
    "if while for switch return sizeof new delete catch alignof decltype "
    "static_cast dynamic_cast reinterpret_cast const_cast static_assert "
    "alignas noexcept throw defined assert".split())


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """One file with raw lines and comment-stripped code lines."""

    def __init__(self, rel: str, text: str):
        self.rel = rel  # posix-style path relative to the repo root
        self.raw_lines = text.splitlines()
        self.code_lines = strip_comments(text)

    def code(self, lineno: int) -> str:
        return self.code_lines[lineno - 1] if \
            1 <= lineno <= len(self.code_lines) else ""

    def raw(self, lineno: int) -> str:
        return self.raw_lines[lineno - 1] if \
            1 <= lineno <= len(self.raw_lines) else ""

    def suppressed(self, lineno: int, rule: str) -> bool:
        m = DISABLE_RE.search(self.raw(lineno))
        return bool(m) and rule in m.group(1).split(",")


def strip_comments(text: str) -> list:
    """Per-line code with //-comments, /* */ blocks, and string literal
    *contents* removed; line structure preserved so line numbers and
    brace matching stay addressable."""
    out = []
    i = 0
    n = len(text)
    line = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            out.append("".join(line))
            line = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == '"':
                state = "string"
                line.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                line.append("'")
                i += 1
                continue
            line.append(ch)
        elif state == "string":
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                state = "code"
                line.append('"')
        elif state == "char":
            if ch == "\\":
                i += 2
                continue
            if ch == "'":
                state = "code"
                line.append("'")
        # line_comment / block_comment: drop the character.
        if state == "block_comment" and ch == "*" and nxt == "/":
            state = "code"
            i += 2
            continue
        i += 1
    out.append("".join(line))
    return out


class Function:
    def __init__(self, qualname: str, rel: str, start: int, end: int,
                 body: str):
        self.qualname = qualname           # e.g. "ViewCache::FindPinned"
        self.name = qualname.rsplit("::", 1)[-1]
        self.rel = rel
        self.start_line = start            # line of the opening brace
        self.end_line = end                # line of the closing brace
        self.body = body                   # comment-stripped body text
        self.callees = set()               # resolved Function objects


class FunctionIndex:
    """Function definitions plus a (possibly over-approximated) call
    graph. Built by either backend; consumed by the graph rules."""

    def __init__(self):
        self.functions = []                # [Function]
        self.by_name = {}                  # last component -> [Function]
        self.by_qual = {}                  # suffix-qualified -> [Function]

    def add(self, fn: Function):
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)
        # Register every qualified suffix: A::B::C -> {A::B::C, B::C}.
        parts = fn.qualname.split("::")
        for k in range(len(parts) - 1):
            self.by_qual.setdefault("::".join(parts[k:]), []).append(fn)

    def resolve(self, callee: str, caller: Function) -> list:
        """All definitions a call token may bind to. Qualified names
        match by suffix; unqualified names prefer same-file definitions
        and fall back to every definition with that name (conservative
        over-approximation — safe for ban rules)."""
        if "::" in callee:
            return self.by_qual.get(callee, [])
        cands = self.by_name.get(callee, [])
        same_file = [f for f in cands if f.rel == caller.rel]
        return same_file if same_file else cands

    def link(self):
        call_re = re.compile(
            r"((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*\(")
        for fn in self.functions:
            for m in call_re.finditer(fn.body):
                token = m.group(1)
                base = token.rsplit("::", 1)[-1]
                if base in KEYWORDS or token.startswith("VECUBE_"):
                    continue
                for target in self.resolve(token, fn):
                    if target is not fn:
                        fn.callees.add(target)

    def reachable(self, root_quals) -> list:
        roots = []
        for q in root_quals:
            roots.extend(self.by_qual.get(q, []))
        seen = set()
        stack = list(roots)
        while stack:
            fn = stack.pop()
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            stack.extend(fn.callees)
        return [f for f in self.functions if id(f) in seen]


# ----------------------------------------------------------------------
# Lexer backend: brace-matched function extraction.
# ----------------------------------------------------------------------

FUNC_HEAD_RE = re.compile(
    r"(?:^|[;{}]|\n)\s*"                       # statement boundary
    r"(?:[\w:<>,&*~\s\[\]]*?\s)??"             # return type / specifiers
    r"((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*\(")


def index_file_lexer(src: SourceFile, index: FunctionIndex):
    text = "\n".join(src.code_lines)
    for m in FUNC_HEAD_RE.finditer(text):
        name = m.group(1)
        base = name.rsplit("::", 1)[-1].lstrip("~")
        if base in KEYWORDS or name.startswith("VECUBE_"):
            continue
        # Walk the parameter list.
        pos = m.end()
        depth = 1
        while pos < len(text) and depth > 0:
            if text[pos] == "(":
                depth += 1
            elif text[pos] == ")":
                depth -= 1
            pos += 1
        if depth != 0:
            continue
        # Skip qualifiers / annotations / a constructor init list up to
        # the body's `{` — bail at `;` (a declaration, not a definition).
        body_start = None
        paren = 0
        while pos < len(text):
            ch = text[pos]
            if paren == 0 and ch == ";":
                break
            if paren == 0 and ch == "{":
                body_start = pos
                break
            if paren == 0 and ch == "=":      # `= default` / `= delete`
                break
            if ch == "(":
                paren += 1
            elif ch == ")":
                paren -= 1
            pos += 1
        if body_start is None:
            continue
        # Brace-match the body.
        pos = body_start + 1
        depth = 1
        while pos < len(text) and depth > 0:
            if text[pos] == "{":
                depth += 1
            elif text[pos] == "}":
                depth -= 1
            pos += 1
        if depth != 0:
            continue
        start_line = text.count("\n", 0, body_start) + 1
        end_line = text.count("\n", 0, pos) + 1
        index.add(Function(name, src.rel, start_line, end_line,
                           text[body_start:pos]))


# ----------------------------------------------------------------------
# AST backend (libclang). Builds the same FunctionIndex from the real
# AST; falls back to the lexer on any load/parse failure.
# ----------------------------------------------------------------------

def try_load_cindex():
    try:
        from clang import cindex  # type: ignore
        # Force an early load failure if no libclang shared object.
        cindex.Index.create()
        return cindex
    except Exception:  # pragma: no cover - environment dependent
        return None


def index_with_ast(cindex, root: Path, compile_commands: Path,
                   sources: dict) -> FunctionIndex | None:
    """Builds the function index from libclang cursors. Returns None on
    any failure so the caller can fall back to the lexer backend."""
    try:  # pragma: no cover - exercised only where libclang exists
        db = cindex.CompilationDatabase.fromDirectory(
            str(compile_commands.parent))
        index = cindex.Index.create()
        out = FunctionIndex()
        fn_kinds = {cindex.CursorKind.CXX_METHOD,
                    cindex.CursorKind.FUNCTION_DECL,
                    cindex.CursorKind.CONSTRUCTOR,
                    cindex.CursorKind.DESTRUCTOR}
        by_usr = {}

        def qualified(cursor):
            parts = []
            c = cursor
            while c is not None and c.kind != \
                    cindex.CursorKind.TRANSLATION_UNIT:
                if c.spelling:
                    parts.append(c.spelling)
                c = c.semantic_parent
            return "::".join(reversed(parts))

        def visit(cursor, rel, src):
            for child in cursor.get_children():
                loc = child.location
                if loc.file and Path(loc.file.name).resolve() != \
                        (root / rel).resolve():
                    continue
                if child.kind in fn_kinds and child.is_definition():
                    start = child.extent.start.line
                    end = child.extent.end.line
                    body = "\n".join(src.code_lines[start - 1:end])
                    fn = Function(qualified(child), rel, start, end, body)
                    out.add(fn)
                    by_usr[child.get_usr()] = fn
                visit(child, rel, src)

        for rel, src in sources.items():
            if not rel.endswith(".cc"):
                continue
            cmds = db.getCompileCommands(str(root / rel))
            args = []
            if cmds:
                args = [a for a in list(cmds[0].arguments)[1:]
                        if a not in ("-c", "-o") and not a.endswith(".o")
                        and not a.endswith(".cc")]
            tu = index.parse(str(root / rel), args=args)
            visit(tu.cursor, rel, src)
        # Edges from the AST: CALL_EXPR referenced definitions.
        out.link()  # lexical edges still apply for cross-TU calls
        return out
    except Exception:
        return None


# ----------------------------------------------------------------------
# Rules.
# ----------------------------------------------------------------------

def check_hit_path(index: FunctionIndex, sources: dict, findings: list):
    for fn in index.reachable(HIT_PATH_ROOTS):
        src = sources.get(fn.rel)
        if src is None:
            continue
        for lineno in range(fn.start_line, fn.end_line + 1):
            if HIT_PATH_BAN_RE.search(src.code(lineno)) and \
                    not src.suppressed(lineno, "hit-path-no-locks"):
                findings.append(Finding(
                    fn.rel, lineno, "hit-path-no-locks",
                    f"blocking/locking call inside {fn.qualname}, which "
                    "is reachable from the ViewCache hit path; reads must "
                    "stay epoch-pinned and lock-free (DESIGN.md §12)"))


def check_shard_scratch(index: FunctionIndex, sources: dict,
                        findings: list):
    for fn in index.reachable(SHARD_SCRATCH_ROOTS):
        src = sources.get(fn.rel)
        if src is None:
            continue
        for lineno in range(fn.start_line, fn.end_line + 1):
            if SHARD_SCRATCH_BAN_RE.search(src.code(lineno)) and \
                    not src.suppressed(lineno,
                                       "no-shared-scratch-on-shard-path"):
                findings.append(Finding(
                    fn.rel, lineno, "no-shared-scratch-on-shard-path",
                    f"shared-arena/locking call inside {fn.qualname}, "
                    "which is reachable from the shard hot path; shards "
                    "must run entirely on their lane's private "
                    "ShardScratch (DESIGN.md §14)"))


def check_unbounded_wait(index: FunctionIndex, sources: dict,
                         findings: list):
    for fn in index.reachable(SERVING_WAIT_ROOTS):
        src = sources.get(fn.rel)
        if src is None:
            continue
        for lineno in range(fn.start_line, fn.end_line + 1):
            if UNBOUNDED_WAIT_RE.search(src.code(lineno)) and \
                    not src.suppressed(lineno, "no-unbounded-wait"):
                findings.append(Finding(
                    fn.rel, lineno, "no-unbounded-wait",
                    f"bare CondVar::Wait inside {fn.qualname}, which is "
                    "reachable from the serving path; use a bounded "
                    "WaitFor slice that re-checks the QueryContext "
                    "(DESIGN.md §13)"))


def check_epoch_pin(src: SourceFile, findings: list):
    if not src.rel.startswith("src/"):
        return
    allowed = src.rel in EPOCH_PIN_FILES
    for lineno, code in enumerate(src.code_lines, start=1):
        if not allowed and EPOCH_TOKEN_RE.search(code) and \
                not src.suppressed(lineno, "epoch-pin-raii"):
            findings.append(Finding(
                src.rel, lineno, "epoch-pin-raii",
                "EpochDomain pins may be taken only inside "
                "util/epoch and serve/view_cache; everything else reads "
                "through ViewCache::ReadHandle"))
            continue
        if allowed and src.rel.endswith(".cc") and \
                not src.rel.startswith("src/util/epoch"):
            if ACQUIRE_CALL_RE.search(code) and \
                    not ACQUIRE_RAII_RE.search(code) and \
                    not src.suppressed(lineno, "epoch-pin-raii"):
                findings.append(Finding(
                    src.rel, lineno, "epoch-pin-raii",
                    "EpochDomain::Acquire() must initialize a local "
                    "`Pin` on the same statement (RAII); pins must never "
                    "outlive the enclosing scope"))
        m = PIN_MEMBER_RE.search(code)
        if m and (src.rel, m.group(1)) not in PIN_MEMBER_ALLOWED and \
                not src.rel.startswith("src/util/epoch") and \
                not src.suppressed(lineno, "epoch-pin-raii"):
            findings.append(Finding(
                src.rel, lineno, "epoch-pin-raii",
                f"member `{m.group(1)}` stores an epoch pin beyond "
                "local scope; the only sanctioned pin member is "
                "ViewCache::ReadHandle::pin_"))


def check_order_comment(src: SourceFile, findings: list):
    if not src.rel.startswith("src/"):
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if not ORDER_TOKEN_RE.search(code):
            continue
        if src.suppressed(lineno, "order-comment"):
            continue
        window = range(max(1, lineno - ORDER_WINDOW), lineno + 1)
        if any(ORDER_COMMENT_RE.search(src.raw(n)) for n in window):
            continue
        findings.append(Finding(
            src.rel, lineno, "order-comment",
            "memory_order use without an adjacent `// order:` "
            "justification (same line or within the 6 lines above)"))


def check_blocking_under_shard_lock(src: SourceFile, findings: list):
    if src.rel != "src/serve/view_cache.cc":
        return
    text = "\n".join(src.code_lines)
    # Pre-compute brace depth at the start of every line.
    depth_at = [0]
    d = 0
    for code in src.code_lines:
        d += code.count("{") - code.count("}")
        depth_at.append(d)
    for lineno, code in enumerate(src.code_lines, start=1):
        m = SHARD_LOCK_RE.search(code)
        if m is None:
            continue
        decl_depth = depth_at[lineno - 1]
        # Scan to the end of the enclosing scope.
        end = lineno
        while end < len(src.code_lines) and depth_at[end] >= decl_depth:
            end += 1
        for n in range(lineno, end + 1):
            line_code = src.code(n)
            if src.suppressed(n, "no-blocking-under-shard-lock"):
                continue
            if BLOCKING_RE.search(line_code):
                findings.append(Finding(
                    src.rel, n, "no-blocking-under-shard-lock",
                    "blocking call while holding a ViewCache shard "
                    "mutex; drop the lock first (DESIGN.md §12)"))
            elif n != lineno and NESTED_LOCK_RE.search(line_code):
                findings.append(Finding(
                    src.rel, n, "no-blocking-under-shard-lock",
                    "second lock acquired under a shard mutex; the "
                    "shard tier is the innermost lock level "
                    "(DESIGN.md §12)"))


def check_naked_sync(src: SourceFile, findings: list):
    if not src.rel.startswith("src/") or src.rel == SYNC_ALLOWED_FILE:
        return
    thread_ok = src.rel in THREAD_ALLOWED_FILES
    for lineno, code in enumerate(src.code_lines, start=1):
        if NAKED_SYNC_RE.search(code) and \
                not src.suppressed(lineno, "naked-sync-primitives"):
            findings.append(Finding(
                src.rel, lineno, "naked-sync-primitives",
                "raw standard-library synchronization primitive; use "
                "the annotated wrappers in util/sync.h (Mutex, "
                "SharedMutex, MutexLock, ReaderLock, CondVar)"))
        if not thread_ok and NAKED_THREAD_RE.search(code) and \
                not src.suppressed(lineno, "naked-sync-primitives"):
            findings.append(Finding(
                src.rel, lineno, "naked-sync-primitives",
                "std::thread outside util/thread_pool; route work "
                "through ThreadPool/ParallelFor"))


def check_detach(src: SourceFile, findings: list):
    if not src.rel.startswith("src/"):
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if DETACH_RE.search(code) and \
                not src.suppressed(lineno, "detached-threads"):
            findings.append(Finding(
                src.rel, lineno, "detached-threads",
                "detached thread; every thread in the tree must be "
                "joined by an owner with a shutdown contract"))


def load_allowlist(root: Path) -> dict:
    """path -> [justification]; '#' comments and blank lines skipped."""
    entries = {}
    path = root / ALLOWLIST_PATH
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        entries.setdefault(parts[0], []).append(
            parts[1] if len(parts) > 1 else "")
    return entries


def check_escape_hatches(src: SourceFile, allowlist: dict,
                         findings: list):
    if not src.rel.startswith("src/") or src.rel == SYNC_ALLOWED_FILE:
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if ESCAPE_HATCH not in code:
            continue
        if src.suppressed(lineno, "escape-hatch-allowlist"):
            continue
        justs = allowlist.get(src.rel, [])
        if not justs or not any(j.strip() for j in justs):
            findings.append(Finding(
                src.rel, lineno, "escape-hatch-allowlist",
                f"{ESCAPE_HATCH} not registered (with a justification) "
                f"in {ALLOWLIST_PATH}"))


# ----------------------------------------------------------------------
# Driver.
# ----------------------------------------------------------------------

def collect_sources(root: Path, paths: list) -> dict:
    """rel-posix-path -> SourceFile for every .h/.cc under src/ (or the
    explicit paths)."""
    files = []
    if paths:
        for p in paths:
            c = Path(p)
            if not c.is_absolute():
                c = root / c
            if c.is_dir():
                files.extend(sorted(f for f in c.rglob("*")
                                    if f.suffix in (".h", ".cc")))
            else:
                files.append(c)
    else:
        files = sorted(f for f in (root / "src").rglob("*")
                       if f.suffix in (".h", ".cc"))
    sources = {}
    for f in files:
        rel = f.resolve().relative_to(root.resolve()).as_posix()
        sources[rel] = SourceFile(rel, f.read_text())
    return sources


def run_rules(root: Path, sources: dict, backend: str,
              compile_commands: Path | None) -> list:
    index = None
    if backend in ("auto", "ast"):
        cindex = try_load_cindex()
        cc = compile_commands
        if cc is None:
            for cand in (root / "build" / "compile_commands.json",
                         root / "compile_commands.json"):
                if cand.exists():
                    cc = cand
                    break
        if cindex is not None and cc is not None:
            index = index_with_ast(cindex, root, cc, sources)
        if index is None and backend == "ast":
            print("vecube_check: AST backend unavailable "
                  "(need clang.cindex + compile_commands.json)",
                  file=sys.stderr)
            sys.exit(2)
    if index is None:
        index = FunctionIndex()
        for src in sources.values():
            index_file_lexer(src, index)
        index.link()

    findings: list = []
    check_hit_path(index, sources, findings)
    check_shard_scratch(index, sources, findings)
    check_unbounded_wait(index, sources, findings)
    allowlist = load_allowlist(root)
    for src in sources.values():
        check_epoch_pin(src, findings)
        check_order_comment(src, findings)
        check_blocking_under_shard_lock(src, findings)
        check_naked_sync(src, findings)
        check_detach(src, findings)
        check_escape_hatches(src, allowlist, findings)
    return findings


CANARY_AS_RE = re.compile(r"//\s*vecube-check-as:\s*(\S+)")
CANARY_EXPECT_RE = re.compile(r"//\s*vecube-check-expect:\s*([\w,-]+)")


def run_canaries(root: Path, canary_dir: Path, backend: str) -> int:
    """Self-test: every canary must trip every rule it declares."""
    failures = 0
    canaries = sorted(canary_dir.glob("*.cc"))
    if not canaries:
        print(f"vecube_check: no canaries under {canary_dir}",
              file=sys.stderr)
        return 1
    for path in canaries:
        text = path.read_text()
        as_m = CANARY_AS_RE.search(text)
        exp_m = CANARY_EXPECT_RE.search(text)
        if not as_m or not exp_m:
            print(f"{path}: missing vecube-check-as / "
                  "vecube-check-expect directives", file=sys.stderr)
            failures += 1
            continue
        virtual = as_m.group(1)
        expected = set(exp_m.group(1).split(","))
        sources = {virtual: SourceFile(virtual, text)}
        findings = run_rules(root, sources, backend, None)
        fired = {f.rule for f in findings}
        missing = expected - fired
        if missing:
            print(f"{path.name}: expected rule(s) did not fire: "
                  f"{', '.join(sorted(missing))}", file=sys.stderr)
            failures += 1
        else:
            print(f"{path.name}: tripped {', '.join(sorted(expected))}")
    if failures:
        print(f"vecube_check: {failures} silent canary(ies) — the "
              "checker has lost teeth", file=sys.stderr)
        return 1
    print(f"vecube_check: all {len(canaries)} canaries tripped")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--backend", choices=("auto", "ast", "lexer"),
                        default="auto")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the AST backend")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--canaries", default=None,
                        help="run in self-test mode over this directory")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    args = parser.parse_args()

    if args.list_rules:
        print(" ".join(RULES))
        return 0

    root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parent.parent

    if args.canaries:
        cdir = Path(args.canaries)
        if not cdir.is_absolute():
            cdir = root / cdir
        return run_canaries(root, cdir, args.backend)

    sources = collect_sources(root, args.paths)
    cc = Path(args.compile_commands) if args.compile_commands else None
    findings = run_rules(root, sources, args.backend, cc)
    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        print(finding)
    if findings:
        print(f"vecube_check: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"vecube_check: clean ({len(sources)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
