// Checker canary: a mutex acquisition smuggled into a helper that the
// ViewCache hit path calls. The per-body regex the old vecube_lint rule
// used would miss this (FindPinned's own body is clean); call-graph
// reachability must not. NOT compiled — consumed by
// tools/vecube_check.py --canaries as a self-test.
//
// vecube-check-as: src/serve/view_cache.cc
// vecube-check-expect: hit-path-no-locks

#include "serve/view_cache.h"
#include "util/sync.h"

namespace vecube {

ViewCache::Shard& ViewCache::ShardFor(const ElementId& id) {
  MutexLock lock(topology_mu_);  // BUG: lock on the read path
  return *shards_[HashOf(id) & shard_mask_];
}

ViewCache::ReadHandle ViewCache::FindPinned(
    const ElementId& id, bool count_miss,
    std::shared_ptr<const Tensor>* out_shared) {
  Shard& shard = ShardFor(id);  // reaches the lock above
  (void)shard;
  (void)count_miss;
  (void)out_shared;
  return ReadHandle();
}

}  // namespace vecube
