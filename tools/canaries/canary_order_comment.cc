// Checker canary: an explicit memory_order with no adjacent `// order:`
// justification. NOT compiled — consumed by
// tools/vecube_check.py --canaries.
//
// vecube-check-as: src/haar/dispatch_cache.cc
// vecube-check-expect: order-comment

#include <atomic>

namespace vecube {
namespace {

std::atomic<int> g_mode{0};

int Mode() {
  return g_mode.load(std::memory_order_acquire);  // BUG: unjustified
}

}  // namespace
}  // namespace vecube
