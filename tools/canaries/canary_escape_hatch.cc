// Checker canary: a VECUBE_NO_THREAD_SAFETY_ANALYSIS escape hatch with
// no entry in tools/thread_safety_allowlist.txt. NOT compiled —
// consumed by tools/vecube_check.py --canaries.
//
// vecube-check-as: src/serve/warmup.cc
// vecube-check-expect: escape-hatch-allowlist

#include "util/sync.h"

namespace vecube {

void WarmCaches() VECUBE_NO_THREAD_SAFETY_ANALYSIS {  // BUG: unlisted
}

}  // namespace vecube
