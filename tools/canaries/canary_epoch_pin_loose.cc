// Checker canary: EpochDomain::Acquire() result bound to `auto` instead
// of a declared local Pin — the RAII contract must be visible on the
// acquiring statement itself. NOT compiled — consumed by
// tools/vecube_check.py --canaries.
//
// vecube-check-as: src/serve/view_cache.cc
// vecube-check-expect: epoch-pin-raii

#include "serve/view_cache.h"
#include "util/epoch.h"

namespace vecube {

void ViewCache::ScanForDebugging() {
  auto pin = EpochDomain::Acquire();  // BUG: not a declared local Pin
  (void)pin;
}

}  // namespace vecube
