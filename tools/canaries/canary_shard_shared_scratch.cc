// Checker canary: the shard hot path reaching back into the shared,
// mutex-protected ScratchArena through a helper. RunTask's own body
// looks clean — the arena acquisition hides one call away, which is
// exactly what call-graph reachability must catch: a shard task that
// serializes on the global arena defeats the decomposition's whole
// contention model (DESIGN.md §14). NOT compiled — consumed by
// tools/vecube_check.py --canaries as a self-test.
//
// vecube-check-as: src/core/shard_plan.cc
// vecube-check-expect: no-shared-scratch-on-shard-path

#include "core/shard_plan.h"
#include "haar/scratch.h"

namespace vecube {

namespace {

double* BorrowGlobalScratch(uint64_t cells) {
  static ScratchArena shared_arena;  // BUG: shared arena on the shard path
  return shared_arena.Acquire(cells).data();
}

}  // namespace

Status ThreadedShardExecutor::RunTask(const Tensor& source,
                                      const ShardPlan& plan,
                                      const ShardTask& task, double* out_raw,
                                      double* lane_buf, ShardScratch* scratch,
                                      const QueryContext* ctx) const {
  double* gather = BorrowGlobalScratch(plan.local_volume());  // reaches it
  (void)source;
  (void)task;
  (void)out_raw;
  (void)lane_buf;
  (void)scratch;
  (void)ctx;
  (void)gather;
  return Status::OK();
}

}  // namespace vecube
