// Checker canary: a bare (untimed) CondVar::Wait hidden in a helper
// that WaitFill calls. A follower parked on it sleeps through its
// deadline — and through cancellation — until the leader happens to
// notify; the no-unbounded-wait rule must flag it through call-graph
// reachability even though WaitFill's own body looks clean. NOT
// compiled — consumed by tools/vecube_check.py --canaries as a
// self-test.
//
// vecube-check-as: src/serve/view_cache.cc
// vecube-check-expect: no-unbounded-wait

#include "serve/view_cache.h"
#include "util/sync.h"

namespace vecube {

namespace {

void ParkUntilReady(ViewCache::Flight* flight) {
  MutexLock lock(flight->m);
  while (!flight->completed && !flight->aborted) {
    flight->cv.Wait(flight->m);  // BUG: unbounded — deadline never polled
  }
}

}  // namespace

ViewCache::FillWait ViewCache::WaitFill(const FillTicket& ticket,
                                        const QueryContext& ctx) {
  (void)ctx;  // BUG: the context is ignored entirely
  ParkUntilReady(ticket.flight_.get());  // reaches the bare Wait above
  FillWait wait;
  return wait;
}

}  // namespace vecube
