// Checker canary: raw standard-library synchronization primitives in
// library code — invisible to thread-safety analysis, which only sees
// the annotated wrappers in util/sync.h. NOT compiled — consumed by
// tools/vecube_check.py --canaries.
//
// vecube-check-as: src/core/side_table.cc
// vecube-check-expect: naked-sync-primitives

#include <mutex>

namespace vecube {
namespace {

std::mutex g_table_mu;  // BUG: naked std::mutex
int g_entries = 0;

}  // namespace

void BumpSideTable() {
  std::lock_guard<std::mutex> lock(g_table_mu);  // BUG: naked lock_guard
  ++g_entries;
}

}  // namespace vecube
