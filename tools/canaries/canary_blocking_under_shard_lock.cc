// Checker canary: file I/O performed while holding a ViewCache shard
// mutex — a latency cliff for every reader mapping to the shard. NOT
// compiled — consumed by tools/vecube_check.py --canaries.
//
// vecube-check-as: src/serve/view_cache.cc
// vecube-check-expect: no-blocking-under-shard-lock

#include "serve/view_cache.h"
#include "util/sync.h"

namespace vecube {

void ViewCache::PersistStatsForDebugging(Shard& shard) {
  MutexLock lock(shard.mu);
  stats_file_->Append(SerializeCounters(shard));  // BUG: I/O under lock
}

}  // namespace vecube
