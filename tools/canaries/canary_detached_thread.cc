// Checker canary: a detached thread spawned outside util/thread_pool —
// it outlives every shutdown contract in the tree. NOT compiled —
// consumed by tools/vecube_check.py --canaries.
//
// vecube-check-as: src/core/background_flush.cc
// vecube-check-expect: detached-threads,naked-sync-primitives

#include <thread>

namespace vecube {

void StartBackgroundFlush() {
  std::thread([] { /* flush loop */ }).detach();  // BUG: detached thread
}

}  // namespace vecube
