// Checker canary: an epoch pin stored in a member outside the
// sanctioned files — a pin that survives its scope stalls epoch
// reclamation for the whole process. NOT compiled — consumed by
// tools/vecube_check.py --canaries.
//
// vecube-check-as: src/core/assembly.cc
// vecube-check-expect: epoch-pin-raii

#include "util/epoch.h"

namespace vecube {

class CachedReader {
 public:
  void Start() { pin_ = EpochDomain::Acquire(); }  // BUG: outlives scope

 private:
  EpochDomain::Pin pin_;  // BUG: pin stored as a member
};

}  // namespace vecube
