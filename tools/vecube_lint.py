#!/usr/bin/env python3
"""vecube_lint: repo conventions that clang-tidy cannot express.

Rules (each can be suppressed on a single line with a trailing
``// vecube-lint: disable=<rule>`` comment):

  header-guard      Every header under src/ uses the canonical include
                    guard VECUBE_<DIR>_<FILE>_H_ (ifndef/define pair and a
                    matching ``#endif  // <guard>`` trailer).
  no-stdio          No printf/fprintf/cout/cerr/puts in library code
                    (src/ outside src/util/) or in tests/. Benchmark
                    drivers (bench/) and CLI tools (tools/) are reporting
                    executables and ARE the output, so they may print;
                    src/util/ hosts the logging sink itself.
  no-naked-new      No naked ``new``/``delete``. ``new`` is allowed only
                    when directly handed to a smart pointer
                    (unique_ptr/shared_ptr construction on the same
                    statement); ``delete`` expressions are banned outright
                    (``= delete`` declarations are fine).
  no-nondeterminism src/core/, src/haar/, and src/serve/ must stay
                    bit-reproducible (the serving cache's first-writer-wins
                    contract leans on deterministic assembly): std::rand,
                    srand, random_device, time(), clock(), gettimeofday,
                    system_clock, high_resolution_clock and getenv are
                    banned there (util/rng.h is the only sanctioned
                    randomness).
  nodiscard-status  Status and Result<T> must carry a class-level
                    [[nodiscard]] in src/util/status.h / src/util/result.h
                    — that is what makes EVERY function returning them
                    discard-checked, with no per-declaration attribute to
                    forget.
  simd-dispatch     SIMD intrinsics (immintrin.h, _mm*/_mm256*/_mm512*
                    calls, __m128/__m256/__m512 types) may appear only in
                    src/haar/simd_avx2.cc — the one translation unit
                    compiled with -mavx2 and reached solely through the
                    runtime-dispatched table in src/haar/simd.h. Intrinsics
                    anywhere else would execute unguarded on CPUs without
                    the feature (or silently skip dispatch and the
                    VECUBE_DISABLE_AVX2 escape hatch).

The old serve-lock-free-reads regex rule moved to tools/vecube_check.py
(rule hit-path-no-locks), which checks call-graph *reachability* instead
of grepping three function bodies — a lock smuggled into a helper the
hit path calls is now caught too.

Usage:
  tools/vecube_lint.py [--root DIR] [--list-rules] [paths...]

Exits 0 when clean, 1 when any finding is reported, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

LINT_DIRS = ("src", "tests", "bench", "tools")
CC_SUFFIXES = {".cc", ".h"}

DISABLE_RE = re.compile(r"//\s*vecube-lint:\s*disable=([\w,-]+)")

STDIO_RE = re.compile(
    r"\b(?:std::)?(?:printf|fprintf|vprintf|vfprintf|puts|putchar)\s*\("
    r"|\bstd::(?:cout|cerr|clog)\b"
)

NONDET_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand|time|clock|gettimeofday|getenv)\s*\("
    r"|\bstd::random_device\b"
    r"|\bstd::chrono::(?:system_clock|high_resolution_clock)\b"
)

SIMD_RE = re.compile(
    r"\b_mm(?:256|512)?_\w+\s*\("
    r"|\b__m(?:128|256|512)[di]?\b"
    r"|\bimmintrin\.h\b"
)
SIMD_ALLOWED = ("src/haar/simd_avx2.cc",)

NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # `new T`, not `operator new(`
DELETE_EXPR_RE = re.compile(r"(?<![\w.])delete(?:\s*\[\s*\])?\s+[\w:(*]")
SMART_PTR_RE = re.compile(r"\b(?:unique_ptr|shared_ptr|make_unique|make_shared)\b")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def iter_code_lines(text: str):
    """Yields (lineno, line, stripped-of-line-comments) skipping block
    comments and raw-string contents conservatively."""
    in_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        code = line
        if in_block:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block = False
        # Strip block comments opened (and possibly closed) on this line.
        while True:
            start = code.find("/*")
            if start < 0:
                break
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block = True
                break
            code = code[:start] + code[end + 2:]
        # Keep the line-comment text separate: suppressions live there.
        comment_pos = code.find("//")
        stripped = code[:comment_pos] if comment_pos >= 0 else code
        yield lineno, line, stripped


def suppressed(line: str, rule: str) -> bool:
    m = DISABLE_RE.search(line)
    if not m:
        return False
    return rule in m.group(1).split(",")


def expected_guard(path: Path, root: Path) -> str:
    rel = path.relative_to(root)
    parts = [p.upper().replace("-", "_").replace(".", "_") for p in rel.parts]
    return "VECUBE_" + "_".join(parts[1:-1] + [rel.stem.upper(), "H_"]) \
        if len(parts) > 2 else "VECUBE_" + rel.stem.upper() + "_H_"


def check_header_guard(path: Path, root: Path, text: str, findings: list):
    rel = path.relative_to(root)
    if rel.parts[0] != "src" or path.suffix != ".h":
        return
    guard = expected_guard(path, root)
    ifndef = re.search(r"^#ifndef\s+(\S+)\s*$", text, re.MULTILINE)
    define = re.search(r"^#define\s+(\S+)\s*$", text, re.MULTILINE)
    if not ifndef or ifndef.group(1) != guard:
        findings.append(Finding(rel, 1, "header-guard",
                                f"expected include guard {guard}"))
        return
    if not define or define.group(1) != guard:
        findings.append(Finding(rel, 1, "header-guard",
                                f"#define does not match guard {guard}"))
        return
    trailer = f"#endif  // {guard}"
    if trailer not in text:
        findings.append(Finding(rel, 1, "header-guard",
                                f"missing trailing '{trailer}'"))


def check_lines(path: Path, root: Path, text: str, findings: list):
    rel = path.relative_to(root)
    top = rel.parts[0]
    in_util = top == "src" and len(rel.parts) > 1 and rel.parts[1] == "util"
    stdio_banned = (top == "src" and not in_util) or top == "tests"
    nondet_banned = (top == "src" and len(rel.parts) > 1
                     and rel.parts[1] in ("core", "haar", "serve"))

    simd_banned = rel.as_posix() not in SIMD_ALLOWED

    prev_code = ""
    for lineno, raw, code in iter_code_lines(text):
        if stdio_banned and STDIO_RE.search(code) \
                and not suppressed(raw, "no-stdio"):
            findings.append(Finding(rel, lineno, "no-stdio",
                                    "stdio output in library/test code; "
                                    "route through util/ or gtest"))
        if simd_banned and SIMD_RE.search(code) \
                and not suppressed(raw, "simd-dispatch"):
            findings.append(Finding(rel, lineno, "simd-dispatch",
                                    "SIMD intrinsics outside "
                                    "src/haar/simd_avx2.cc; go through the "
                                    "runtime-dispatched HaarVecOps table"))
        if nondet_banned and NONDET_RE.search(code) \
                and not suppressed(raw, "no-nondeterminism"):
            findings.append(Finding(rel, lineno, "no-nondeterminism",
                                    "non-deterministic call in "
                                    "determinism-critical directory; use "
                                    "util/rng.h"))
        # "Same statement" across a line break: a smart-pointer wrapper on
        # the previous line (continuation) still owns this `new`.
        statement = prev_code + " " + code if not prev_code.rstrip() \
            .endswith((";", "}", "{")) else code
        if NEW_RE.search(code) and not SMART_PTR_RE.search(statement) \
                and not suppressed(raw, "no-naked-new"):
            findings.append(Finding(rel, lineno, "no-naked-new",
                                    "naked new; hand it to unique_ptr/"
                                    "shared_ptr on the same statement"))
        if DELETE_EXPR_RE.search(code) and not suppressed(raw, "no-naked-new"):
            findings.append(Finding(rel, lineno, "no-naked-new",
                                    "delete expression; owners must be "
                                    "smart pointers or containers"))
        prev_code = code


def check_nodiscard_status(root: Path, findings: list):
    for rel_name, class_name in (("src/util/status.h", "Status"),
                                 ("src/util/result.h", "Result")):
        path = root / rel_name
        if not path.exists():
            findings.append(Finding(Path(rel_name), 1, "nodiscard-status",
                                    "file missing"))
            continue
        text = path.read_text()
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + class_name, text):
            findings.append(Finding(
                Path(rel_name), 1, "nodiscard-status",
                f"{class_name} must be declared 'class [[nodiscard]] "
                f"{class_name}' so every function returning it is "
                "discard-checked"))


def collect_files(root: Path, paths: list) -> list:
    if paths:
        files = []
        for p in paths:
            candidate = Path(p)
            if not candidate.is_absolute():
                candidate = root / candidate
            if candidate.is_dir():
                files.extend(sorted(f for f in candidate.rglob("*")
                                    if f.suffix in CC_SUFFIXES))
            elif candidate.suffix in CC_SUFFIXES:
                files.append(candidate)
        return files
    files = []
    for d in LINT_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(sorted(f for f in base.rglob("*")
                                if f.suffix in CC_SUFFIXES))
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tests "
                             "bench tools)")
    args = parser.parse_args()

    if args.list_rules:
        print("header-guard no-stdio no-naked-new no-nondeterminism "
              "nodiscard-status simd-dispatch")
        return 0

    root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parent.parent

    findings: list = []
    for path in collect_files(root, args.paths):
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError) as err:
            findings.append(Finding(path.relative_to(root), 1, "io",
                                    f"unreadable: {err}"))
            continue
        check_header_guard(path, root, text, findings)
        check_lines(path, root, text, findings)
    check_nodiscard_status(root, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"vecube_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("vecube_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
