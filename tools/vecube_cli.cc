// vecube_cli: command-line front end for the vecube library.
//
//   vecube_cli build    --csv FILE --extents N0,N1,... --out STORE
//                       [--dict] [--pad]
//       Build a SUM data cube from a CSV fact table (last column is the
//       measure, the rest are dimension keys) and persist it as a store
//       holding the root cube.
//
//   vecube_cli optimize --store STORE --out STORE2
//                       --workload MASK:FREQ[,MASK:FREQ...]
//                       [--budget CELLS]
//       Select the minimum-cost view element set for the workload
//       (Algorithm 1, plus greedy redundancy up to --budget) and persist
//       the rematerialized store.
//
//   vecube_cli query    --store STORE --mask MASK
//       Assemble the aggregated view (bit m of MASK set = dimension m
//       aggregated away) and print its cells.
//
//   vecube_cli assemble --store STORE --mask MASK [--shards S]
//                       [--threads T]
//       Assemble the aggregated view through the dyadic shard-parallel
//       path (DESIGN.md §14) and print timing, the operation count, and
//       the resolved shard budget — without dumping cells. --shards 0
//       (default) follows the pool size; results and op counts are
//       identical at every (shards, threads) combination.
//
//   vecube_cli range    --store STORE --start A,B,... --width W0,W1,...
//       Range-aggregation over the store.
//
//   vecube_cli info     --store STORE
//       Shape, element inventory, and storage statistics.
//
//   vecube_cli serve    --store STORE --workload MASK:FREQ[,MASK:FREQ...]
//                       --queries N [--cache-mb MB] [--seed S]
//                       [--threads T] [--deadline-ms D] [--max-inflight M]
//                       [--allow-degraded]
//       Replay N view queries sampled from the workload distribution
//       through the full serving stack (admission control + per-worker
//       ElementServer over the shared cache, src/serve) and dump the
//       ServeMetrics block: hits, misses, evictions, resident bytes,
//       assembly operations saved versus uncached serving, and the
//       robustness counters (deadline_exceeded / shed / degraded /
//       follower_retries). --deadline-ms bounds each query (0 =
//       unbounded); --max-inflight caps concurrent assembly, shedding
//       excess arrivals with a retry-after hint; --allow-degraded lets
//       budget-starved queries answer approximately (with an L2 bound)
//       instead of failing. SIGINT stops issuing new queries, drains the
//       admission queue, and still prints the metrics block (clean
//       shutdown).
//
//   vecube_cli fsck     --store STORE [--wal WAL] [--repair] [--out STORE2]
//       Verify snapshot integrity element by element (v2 checksums) and,
//       with --wal, the write-ahead log's committed prefix. --repair
//       re-derives corrupt elements from healthy ones via dynamic
//       assembly; --out persists the repaired store. Exit status is 0
//       when everything is (or was made) healthy, 1 otherwise.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/io.h"
#include "core/repair.h"
#include "core/wal.h"
#include "cube/csv.h"
#include "cube/cube_builder.h"
#include "range/range_engine.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "serve/admission.h"
#include "serve/serving.h"
#include "serve/view_cache.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "workload/population.h"

namespace {

using vecube::Status;

/// Set by the SIGINT handler; serve workers poll it between queries so
/// ^C stops issuing new work and the admission queue drains cleanly.
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void HandleSigint(int) { g_interrupted = 1; }

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: vecube_cli "
               "build|optimize|query|assemble|range|info|serve|fsck ...\n"
               "see the header of tools/vecube_cli.cc for details\n");
  return 2;
}

// --flag value parser; flags are unique.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg.erase(0, 2);
    std::string value = "1";  // boolean flag unless a value follows
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    flags[arg] = std::move(value);
  }
  return flags;
}

vecube::Result<std::vector<uint32_t>> ParseU32List(const std::string& text) {
  std::vector<uint32_t> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("'" + token + "' is not an integer");
    }
    out.push_back(static_cast<uint32_t>(value));
    pos = comma + 1;
  }
  if (out.empty()) return Status::InvalidArgument("empty list");
  return out;
}

int CmdBuild(const std::map<std::string, std::string>& flags) {
  if (!flags.count("csv") || !flags.count("extents") || !flags.count("out")) {
    return Usage();
  }
  auto extents = ParseU32List(flags.at("extents"));
  if (!extents.ok()) return Fail(extents.status());

  auto shape = flags.count("pad") ? vecube::CubeShape::MakePadded(*extents)
                                  : vecube::CubeShape::Make(*extents);
  if (!shape.ok()) return Fail(shape.status());

  auto relation = vecube::LoadRelationCsv(
      flags.at("csv"), static_cast<uint32_t>(extents->size()), 1);
  if (!relation.ok()) return Fail(relation.status());

  vecube::CubeBuildOptions build_options;
  if (flags.count("dict")) {
    build_options.mapping = vecube::KeyMapping::kDictionary;
  }
  auto built = vecube::CubeBuilder::Build(*relation, *shape, build_options);
  if (!built.ok()) return Fail(built.status());

  vecube::ElementStore store(*shape);
  Status st = store.Put(vecube::ElementId::Root(shape->ndim()),
                        std::move(built->cube));
  if (!st.ok()) return Fail(st);
  st = vecube::SaveStoreV2(store, flags.at("out"));
  if (!st.ok()) return Fail(st);
  std::printf("built %s cube from %llu rows -> %s\n",
              shape->ToString().c_str(),
              static_cast<unsigned long long>(relation->num_rows()),
              flags.at("out").c_str());
  return 0;
}

vecube::Result<vecube::QueryPopulation> ParseWorkload(
    const std::string& text, const vecube::CubeShape& shape) {
  std::vector<vecube::QuerySpec> queries;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    const size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("workload entry '" + token +
                                     "' is not MASK:FREQ");
    }
    const uint32_t mask =
        static_cast<uint32_t>(std::strtoul(token.substr(0, colon).c_str(),
                                           nullptr, 0));
    const double freq = std::strtod(token.substr(colon + 1).c_str(), nullptr);
    vecube::ElementId view;
    VECUBE_ASSIGN_OR_RETURN(view,
                            vecube::ElementId::AggregatedView(mask, shape));
    queries.push_back(vecube::QuerySpec{view, freq});
    pos = comma + 1;
  }
  return vecube::QueryPopulation::Make(std::move(queries), shape);
}

int CmdOptimize(const std::map<std::string, std::string>& flags) {
  if (!flags.count("store") || !flags.count("out") ||
      !flags.count("workload")) {
    return Usage();
  }
  auto store = vecube::LoadStore(flags.at("store"));
  if (!store.ok()) return Fail(store.status());
  auto population = ParseWorkload(flags.at("workload"), store->shape());
  if (!population.ok()) return Fail(population.status());

  auto selection = vecube::SelectMinCostBasis(store->shape(), *population);
  if (!selection.ok()) return Fail(selection.status());
  std::vector<vecube::ElementId> target = selection->basis;

  if (flags.count("budget")) {
    vecube::GreedyOptions greedy;
    greedy.storage_target_cells =
        std::strtoull(flags.at("budget").c_str(), nullptr, 10);
    greedy.pool = vecube::CandidatePool::kAggregatedViews;
    auto frontier = vecube::GreedySelect(store->shape(), *population,
                                         target, greedy);
    if (!frontier.ok()) return Fail(frontier.status());
    target = frontier->back().selected;
  }

  // Rematerialize from the loaded store (assembles the root if needed).
  vecube::AssemblyEngine engine(&*store);
  vecube::ElementStore next(store->shape());
  for (const vecube::ElementId& id : target) {
    auto data = engine.Assemble(id);
    if (!data.ok()) return Fail(data.status());
    Status st = next.Put(id, std::move(data).value());
    if (!st.ok()) return Fail(st);
  }
  Status st = vecube::SaveStoreV2(next, flags.at("out"));
  if (!st.ok()) return Fail(st);
  std::printf("selected %zu elements (predicted cost %.2f ops/query, "
              "storage %llu cells) -> %s\n",
              target.size(), selection->predicted_cost,
              static_cast<unsigned long long>(next.StorageCells()),
              flags.at("out").c_str());
  return 0;
}

int CmdQuery(const std::map<std::string, std::string>& flags) {
  if (!flags.count("store") || !flags.count("mask")) return Usage();
  auto store = vecube::LoadStore(flags.at("store"));
  if (!store.ok()) return Fail(store.status());
  const uint32_t mask = static_cast<uint32_t>(
      std::strtoul(flags.at("mask").c_str(), nullptr, 0));
  vecube::AssemblyEngine engine(&*store);
  vecube::OpCounter ops;
  auto view = engine.AssembleView(mask, &ops);
  if (!view.ok()) return Fail(view.status());
  std::printf("view mask=%u shape=%s ops=%llu\n", mask,
              view->ShapeString().c_str(),
              static_cast<unsigned long long>(ops.adds));
  for (uint64_t i = 0; i < view->size(); ++i) {
    std::printf("%s%g", i == 0 ? "" : " ", (*view)[i]);
  }
  std::printf("\n");
  return 0;
}

int CmdAssemble(const std::map<std::string, std::string>& flags) {
  if (!flags.count("store") || !flags.count("mask")) return Usage();
  auto store = vecube::LoadStore(flags.at("store"));
  if (!store.ok()) return Fail(store.status());
  const uint32_t mask = static_cast<uint32_t>(
      std::strtoul(flags.at("mask").c_str(), nullptr, 0));
  const uint32_t threads =
      flags.count("threads")
          ? static_cast<uint32_t>(
                std::strtoul(flags.at("threads").c_str(), nullptr, 10))
          : vecube::ThreadPool::DefaultThreadCount();
  const uint32_t shards =
      flags.count("shards")
          ? static_cast<uint32_t>(
                std::strtoul(flags.at("shards").c_str(), nullptr, 10))
          : 0;

  std::unique_ptr<vecube::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<vecube::ThreadPool>(threads);
  vecube::AssemblyEngine engine(&*store, pool.get(), nullptr, shards);

  auto target = vecube::ElementId::AggregatedView(mask, store->shape());
  if (!target.ok()) return Fail(target.status());
  const uint64_t plan_cost = engine.PlanCost(*target);
  if (plan_cost == vecube::kInfiniteCost) {
    return Fail(Status::Incomplete("store cannot assemble this view"));
  }

  vecube::OpCounter ops;
  const auto start = std::chrono::steady_clock::now();
  auto view = engine.Assemble(*target, &ops);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (!view.ok()) return Fail(view.status());
  std::printf("view mask=%u shape=%s\n", mask, view->ShapeString().c_str());
  std::printf("shards=%u threads=%u plan_cost=%llu ops=%llu time_ms=%.3f\n",
              engine.num_shards(), threads,
              static_cast<unsigned long long>(plan_cost),
              static_cast<unsigned long long>(ops.adds), ms);
  return 0;
}

int CmdRange(const std::map<std::string, std::string>& flags) {
  if (!flags.count("store") || !flags.count("start") ||
      !flags.count("width")) {
    return Usage();
  }
  auto store = vecube::LoadStore(flags.at("store"));
  if (!store.ok()) return Fail(store.status());
  auto start = ParseU32List(flags.at("start"));
  auto width = ParseU32List(flags.at("width"));
  if (!start.ok()) return Fail(start.status());
  if (!width.ok()) return Fail(width.status());
  auto range = vecube::RangeSpec::Make(*start, *width, store->shape());
  if (!range.ok()) return Fail(range.status());
  vecube::RangeEngine engine(&*store);
  vecube::RangeQueryStats stats;
  auto sum = engine.RangeSum(*range, &stats);
  if (!sum.ok()) return Fail(sum.status());
  std::printf("range %s sum=%g cell_reads=%llu assembly_ops=%llu\n",
              range->ToString().c_str(), *sum,
              static_cast<unsigned long long>(stats.cell_reads),
              static_cast<unsigned long long>(stats.assembly_ops));
  return 0;
}

int CmdInfo(const std::map<std::string, std::string>& flags) {
  if (!flags.count("store")) return Usage();
  auto store = vecube::LoadStore(flags.at("store"));
  if (!store.ok()) return Fail(store.status());
  std::printf("shape %s, %zu elements, %llu cells (%.3fx cube volume)\n",
              store->shape().ToString().c_str(), store->size(),
              static_cast<unsigned long long>(store->StorageCells()),
              store->RelativeStorage());
  for (const vecube::ElementId& id : store->Ids()) {
    const char* kind = id.IsAggregatedView(store->shape()) ? "view"
                       : id.IsIntermediate()               ? "intermediate"
                                                           : "residual";
    std::printf("  %-24s %-12s vol=%llu\n", id.ToString().c_str(), kind,
                static_cast<unsigned long long>(
                    id.DataVolume(store->shape())));
  }
  const bool complete = vecube::IsComplete(store->Ids(), store->shape());
  std::printf("complete basis: %s; non-redundant: %s\n",
              complete ? "yes" : "no",
              vecube::IsNonRedundant(store->Ids(), store->shape()) ? "yes"
                                                                   : "no");
  return 0;
}

int CmdServe(const std::map<std::string, std::string>& flags) {
  if (!flags.count("store") || !flags.count("workload") ||
      !flags.count("queries")) {
    return Usage();
  }
  auto store = vecube::LoadStore(flags.at("store"));
  if (!store.ok()) return Fail(store.status());
  auto population = ParseWorkload(flags.at("workload"), store->shape());
  if (!population.ok()) return Fail(population.status());
  const uint64_t queries =
      std::strtoull(flags.at("queries").c_str(), nullptr, 10);
  if (queries == 0) return Fail(Status::InvalidArgument("--queries must be > 0"));
  const uint64_t cache_mb =
      flags.count("cache-mb")
          ? std::strtoull(flags.at("cache-mb").c_str(), nullptr, 10)
          : 64;
  const uint64_t seed =
      flags.count("seed") ? std::strtoull(flags.at("seed").c_str(), nullptr, 10)
                          : 42;

  const uint64_t threads =
      flags.count("threads")
          ? std::strtoull(flags.at("threads").c_str(), nullptr, 10)
          : 2;
  const uint64_t deadline_ms =
      flags.count("deadline-ms")
          ? std::strtoull(flags.at("deadline-ms").c_str(), nullptr, 10)
          : 0;  // 0 = unbounded
  const uint64_t max_inflight =
      flags.count("max-inflight")
          ? std::strtoull(flags.at("max-inflight").c_str(), nullptr, 10)
          : threads;
  const bool allow_degraded = flags.count("allow-degraded") != 0;
  if (threads == 0 || max_inflight == 0) {
    return Fail(Status::InvalidArgument(
        "--threads and --max-inflight must be > 0"));
  }

  vecube::ViewCacheOptions cache_options;
  cache_options.enabled = true;
  cache_options.capacity_bytes = cache_mb << 20;
  vecube::ViewCache cache(cache_options);
  vecube::AdmissionOptions admission_options;
  admission_options.max_inflight = static_cast<uint32_t>(max_inflight);
  vecube::AdmissionController admission(admission_options);

  // ^C anywhere in serve stops issuing new queries; already-admitted
  // work drains below. Installed before the (potentially long)
  // pre-sampling phase so an early interrupt also exits gracefully
  // instead of hard-killing the process.
  std::signal(SIGINT, HandleSigint);

  // Pre-sample the query sequence so the served traffic is deterministic
  // for a given seed regardless of thread interleaving. An interrupt
  // truncates the sequence: only what was sampled can be issued.
  vecube::Rng rng(seed);
  std::vector<vecube::ElementId> sequence;
  sequence.reserve(queries);
  for (uint64_t q = 0; q < queries && !g_interrupted; ++q) {
    sequence.push_back(population->Sample(&rng));
  }
  const uint64_t issuable = sequence.size();
  vecube::AssemblyEngine planner(&*store);
  uint64_t baseline_ops = 0;
  for (const vecube::ElementId& view : sequence) {
    baseline_ops += planner.PlanCost(view);
  }

  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline_failures{0};
  std::atomic<uint64_t> degraded_served{0};
  std::vector<double> checksums(threads, 0.0);
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint64_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, w]() {
        vecube::AssemblyEngine engine(&*store);
        vecube::ServeQueryOptions serve_options;
        serve_options.allow_degraded = allow_degraded;
        vecube::ElementServer server(&engine, &*store, &cache,
                                     serve_options);
        for (;;) {
          if (g_interrupted) return;
          const uint64_t q =
              next.fetch_add(1, std::memory_order_relaxed);  // order: work
                                                             // distribution
                                                             // counter only
          if (q >= issuable) return;
          vecube::QueryContext ctx =
              deadline_ms > 0 ? vecube::QueryContext::WithTimeout(
                                    std::chrono::milliseconds(deadline_ms))
                              : vecube::QueryContext();
          auto permit = admission.Admit(ctx);
          if (!permit.ok()) {
            if (permit.status().IsResourceExhausted()) {
              cache.RecordShed();
              shed.fetch_add(1, std::memory_order_relaxed);  // order: stat
            } else if (permit.status().IsDeadlineExceeded() ||
                       permit.status().IsCancelled()) {
              cache.RecordDeadlineExceeded();
              deadline_failures.fetch_add(
                  1, std::memory_order_relaxed);  // order: stat
            } else {
              failed.fetch_add(1, std::memory_order_relaxed);  // order: stat
            }
            continue;
          }
          auto answer = server.Serve(sequence[q], ctx);
          if (!answer.ok()) {
            if (answer.status().IsDeadlineExceeded() ||
                answer.status().IsCancelled()) {
              deadline_failures.fetch_add(
                  1, std::memory_order_relaxed);  // order: stat
            } else {
              failed.fetch_add(1, std::memory_order_relaxed);  // order: stat
            }
            continue;
          }
          if (answer->degraded) {
            degraded_served.fetch_add(1,
                                      std::memory_order_relaxed);  // order:
                                                                   // stat
          }
          checksums[w] += answer->data[0];
          served.fetch_add(1, std::memory_order_relaxed);  // order: stat
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  admission.Shutdown();
  const bool drained = admission.Drain(std::chrono::milliseconds(2000));
  std::signal(SIGINT, SIG_DFL);

  double checksum = 0.0;
  for (double c : checksums) checksum += c;
  if (failed.load() > 0) {
    return Fail(Status::Internal(
        std::to_string(failed.load()) +
        " queries failed outside the robustness contract"));
  }

  const vecube::ServeMetrics metrics = cache.Metrics();
  if (g_interrupted) {
    std::printf("interrupted: issued %llu of %llu queries, %s\n",
                static_cast<unsigned long long>(
                    std::min(next.load(), issuable)),
                static_cast<unsigned long long>(queries),
                drained ? "admission queue drained" : "DRAIN TIMED OUT");
  }
  std::printf("served %llu queries (checksum %g)\n",
              static_cast<unsigned long long>(served.load()), checksum);
  std::printf("  deadline_exceeded  %llu\n",
              static_cast<unsigned long long>(deadline_failures.load()));
  std::printf("  shed               %llu\n",
              static_cast<unsigned long long>(shed.load()));
  std::printf("  degraded           %llu\n",
              static_cast<unsigned long long>(degraded_served.load()));
  std::printf("  follower_retries   %llu\n",
              static_cast<unsigned long long>(metrics.follower_retries));
  std::printf("  hits               %llu\n",
              static_cast<unsigned long long>(metrics.hits));
  std::printf("  misses             %llu\n",
              static_cast<unsigned long long>(metrics.misses));
  std::printf("  hit_rate           %.4f\n", metrics.HitRate());
  std::printf("  insertions         %llu\n",
              static_cast<unsigned long long>(metrics.insertions));
  std::printf("  rejected_inserts   %llu\n",
              static_cast<unsigned long long>(metrics.rejected_inserts));
  std::printf("  evictions          %llu\n",
              static_cast<unsigned long long>(metrics.evictions));
  std::printf("  invalidations      %llu\n",
              static_cast<unsigned long long>(metrics.invalidations));
  std::printf("  entries            %llu\n",
              static_cast<unsigned long long>(metrics.entries));
  std::printf("  bytes_resident     %llu\n",
              static_cast<unsigned long long>(metrics.bytes_resident));
  std::printf("  assembly_ops_saved %llu (baseline %llu, executed %llu)\n",
              static_cast<unsigned long long>(metrics.assembly_ops_saved),
              static_cast<unsigned long long>(baseline_ops),
              static_cast<unsigned long long>(baseline_ops -
                                              metrics.assembly_ops_saved));
  return 0;
}

int CmdFsck(const std::map<std::string, std::string>& flags) {
  if (!flags.count("store")) return Usage();
  const std::string& path = flags.at("store");

  vecube::SnapshotReport report;
  auto store = vecube::LoadStoreV2(path, &report);
  if (!store.ok()) {
    // Not a readable v2 snapshot; the strict loader tells v1 apart from
    // genuine damage.
    auto v1 = vecube::LoadStore(path);
    if (v1.ok()) {
      std::printf("%s: v1 snapshot, structurally sound "
                  "(format carries no checksums; rewrite as v2 to get "
                  "them)\n",
                  path.c_str());
      return 0;
    }
    return Fail(store.status());
  }

  std::printf("%s: v2 snapshot, shape %s, %zu elements, wal_seq=%llu\n",
              path.c_str(), store->shape().ToString().c_str(),
              report.elements.size(),
              static_cast<unsigned long long>(report.meta.wal_seq));
  for (const vecube::ElementDiagnostic& diag : report.elements) {
    if (diag.corrupt) {
      std::printf("  %-24s CORRUPT  %s\n", diag.id.ToString().c_str(),
                  diag.detail.c_str());
    } else {
      std::printf("  %-24s ok       vol=%llu\n", diag.id.ToString().c_str(),
                  static_cast<unsigned long long>(
                      diag.id.DataVolume(store->shape())));
    }
  }

  if (flags.count("wal")) {
    auto scan = vecube::WriteAheadLog::Scan(flags.at("wal"), store->shape());
    if (!scan.ok()) return Fail(scan.status());
    std::printf("%s: base_lsn=%llu, %zu committed records, %llu committed "
                "bytes%s\n",
                flags.at("wal").c_str(),
                static_cast<unsigned long long>(scan->base_lsn),
                scan->records.size(),
                static_cast<unsigned long long>(scan->committed_bytes),
                scan->torn_tail
                    ? ", TORN TAIL (truncated away on next open)"
                    : ", clean tail");
  }

  if (flags.count("repair") && store->quarantined_count() > 0) {
    auto fixed = vecube::RepairStore(&*store);
    if (!fixed.ok()) return Fail(fixed.status());
    std::printf("repair: %zu re-derived, %zu unrepairable, %llu assembly "
                "ops\n",
                fixed->repaired.size(), fixed->unrepaired.size(),
                static_cast<unsigned long long>(fixed->assembly_ops));
    for (const vecube::ElementId& id : fixed->unrepaired) {
      std::printf("  %-24s UNREPAIRABLE (no surviving reconstruction "
                  "path)\n",
                  id.ToString().c_str());
    }
    if (flags.count("out")) {
      Status st = vecube::SaveStoreV2(*store, flags.at("out"), report.meta);
      if (!st.ok()) return Fail(st);
      std::printf("repaired store -> %s\n", flags.at("out").c_str());
    }
  }

  const size_t remaining = store->quarantined_count();
  std::printf("verdict: %s\n", remaining == 0
                                   ? "healthy"
                                   : "degraded (corrupt elements remain)");
  return remaining == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "build") return CmdBuild(flags);
  if (command == "optimize") return CmdOptimize(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "assemble") return CmdAssemble(flags);
  if (command == "range") return CmdRange(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "fsck") return CmdFsck(flags);
  return Usage();
}
