// Reproduces Table 2 / Figure 7 of the paper: the pedagogical 2x2 data
// cube example. Two views, V1 and V7, are equally likely (f1 = f7 = 0.5).
// For ten view element sets we compute completeness, redundancy, the
// processing cost (operations to generate each queried view once, per
// Procedure 3) and the storage cost, and compare against the paper's
// values.
//
// Element labels (see DESIGN.md for the derivation):
//   V0 = A = (I, I)    V1 = (P, I)   V2 = (P, P)   V3 = (P, R)
//   V4 = (R, I)        V5 = (R, P)   V6 = (R, R)   V7 = (I, P)
//   V8 = (I, R)

#include <cstdio>
#include <string>
#include <vector>

#include "core/basis.h"
#include "select/algorithm1.h"
#include "select/pair_cost.h"
#include "select/procedure3.h"
#include "workload/population.h"

using vecube::ElementId;

namespace {

struct Row {
  std::string label;
  std::vector<int> members;
  bool paper_basis;
  bool paper_redundant;
  uint64_t paper_processing;
  uint64_t paper_storage;
};

}  // namespace

int main() {
  auto shape_result = vecube::CubeShape::Make({2, 2});
  if (!shape_result.ok()) return 1;
  const vecube::CubeShape shape = *shape_result;

  auto make = [&](uint32_t l0, uint32_t o0, uint32_t l1, uint32_t o1) {
    auto id = ElementId::Make({{l0, o0}, {l1, o1}}, shape);
    return *id;
  };
  const std::vector<ElementId> v = {
      make(0, 0, 0, 0), make(1, 0, 0, 0), make(1, 0, 1, 0),
      make(1, 0, 1, 1), make(1, 1, 0, 0), make(1, 1, 1, 0),
      make(1, 1, 1, 1), make(0, 0, 1, 0), make(0, 0, 1, 1)};

  const std::vector<Row> rows = {
      {"{V3, V6, V7}", {3, 6, 7}, true, false, 3, 4},
      {"{V1, V5, V6}", {1, 5, 6}, true, false, 3, 4},
      {"{V0}", {0}, true, false, 4, 4},
      {"{V1, V4}", {1, 4}, true, false, 4, 4},
      {"{V7, V8}", {7, 8}, true, false, 4, 4},
      {"{V2, V3, V5, V6}", {2, 3, 5, 6}, true, false, 4, 4},
      {"{V0, V1, V7}", {0, 1, 7}, true, true, 0, 8},
      {"{V1, V7}", {1, 7}, false, true, 0, 4},
      {"{V3, V7}", {3, 7}, false, false, 3, 3},
      {"{V2, V3, V5}", {2, 3, 5}, false, false, 4, 3},
  };

  std::printf("Table 2: processing and storage costs of view element sets\n");
  std::printf("(2x2 cube, queries V1 and V7 equally likely; processing =\n");
  std::printf(" operations to generate each queried view once)\n\n");
  std::printf("%-18s | %-5s %-9s | %10s %7s | %s\n", "set", "basis",
              "redundant", "processing", "storage", "vs paper");
  std::printf("-------------------------------------------------------------"
              "-----------\n");

  bool all_match = true;
  for (const Row& row : rows) {
    std::vector<ElementId> set;
    for (int i : row.members) set.push_back(v[static_cast<size_t>(i)]);

    const bool complete = vecube::IsComplete(set, shape);
    const bool redundant = !vecube::IsNonRedundant(set, shape);
    const uint64_t storage = vecube::StorageVolume(set, shape);

    auto calc = vecube::Procedure3Calculator::Make(shape, set);
    if (!calc.ok()) return 1;
    const uint64_t c1 = calc->Cost(v[1]);
    const uint64_t c7 = calc->Cost(v[7]);
    const uint64_t processing = c1 + c7;

    const bool matches = complete == row.paper_basis &&
                         redundant == row.paper_redundant &&
                         processing == row.paper_processing &&
                         storage == row.paper_storage;
    all_match = all_match && matches;
    std::printf("%-18s | %-5s %-9s | %10llu %7llu | %s\n", row.label.c_str(),
                complete ? "yes" : "no", redundant ? "yes" : "no",
                static_cast<unsigned long long>(processing),
                static_cast<unsigned long long>(storage),
                matches ? "= paper" : "MISMATCH");
  }

  // The example's optimization claim: Algorithm 1 finds a cost-3 basis.
  auto population = vecube::FixedPopulation({{v[1], 0.5}, {v[7], 0.5}}, shape);
  auto selection = vecube::SelectMinCostBasis(shape, *population);
  if (!selection.ok()) return 1;
  std::printf("\nAlgorithm 1 selection: cost %.1f (weighted; x2 = %g ops), "
              "basis of %zu elements\n",
              selection->predicted_cost, 2 * selection->predicted_cost,
              selection->basis.size());
  for (const ElementId& id : selection->basis) {
    std::printf("  %s\n", id.ToString().c_str());
  }
  const bool optimal = selection->predicted_cost == 1.5;
  all_match = all_match && optimal;

  std::printf("\n%s\n", all_match ? "All Table 2 rows match the paper; "
                                    "Algorithm 1 attains the optimum (3 ops)."
                                  : "MISMATCH detected — see rows above.");
  return all_match ? 0 : 1;
}
