// Kernel throughput: the Haar partial-aggregation pair and its synthesis
// inverse (the building blocks of every view element operation), across
// cube sizes and axis positions. Not a paper figure — an ablation that
// documents the cost of the substrate.
//
// The headline comparison times total aggregation of a cube two ways and
// prints fused-vs-baseline and GB/s columns:
//   baseline  step-at-a-time cascade (one materialized tensor per level)
//             with the scalar kernel table forced — the pre-fusion path.
//   fused     the fused kernel layer (haar/fused.h): whole cascade groups
//             in one pass through scratch tiles, runtime-dispatched
//             vector kernels, ScratchArena reuse.
// Both paths must produce bit-identical totals and equal OpCounter adds;
// the binary exits nonzero if they do not. Results are appended to
// BENCH_kernels.json in the working directory so the perf trajectory can
// accumulate across revisions.
//
// Usage: bench_kernels [--smoke] [--reps=N] [google-benchmark flags...]
//   --smoke   headline on a small cube only and skip the google-benchmark
//             suites (fast enough for a CI smoke step)
//   --reps=N  timing repetitions per path (best-of, default 3)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cube/shape.h"
#include "cube/synthetic.h"
#include "haar/cascade.h"
#include "haar/scratch.h"
#include "haar/simd.h"
#include "haar/transform.h"
#include "util/rng.h"

namespace {

vecube::Tensor MakeCube(uint32_t d, uint32_t n, uint64_t seed) {
  auto shape = vecube::CubeShape::MakeSquare(d, n);
  vecube::Rng rng(seed);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  return std::move(cube).value();
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The pre-fusion total aggregation: cascade P1 one level at a time along
// every dimension, materializing each intermediate, with the scalar kernel
// table forced for the duration. This is what TotalAggregate/GrandTotal
// compiled to before the fused layer existed.
double BaselineGrandTotal(const vecube::Tensor& cube, vecube::OpCounter* ops) {
  vecube::internal::OverrideVecOpsForTesting(
      &vecube::internal::ScalarVecOps());
  vecube::Tensor current = cube;
  for (uint32_t m = 0; m < cube.ndim(); ++m) {
    while (current.extent(m) > 1) {
      auto next = vecube::PartialSum(current, m, ops);
      if (!next.ok()) {
        std::fprintf(stderr, "baseline PartialSum failed: %s\n",
                     next.status().ToString().c_str());
        std::exit(1);
      }
      current = std::move(*next);
    }
  }
  vecube::internal::OverrideVecOpsForTesting(nullptr);
  return current.raw()[0];
}

struct HeadlineResult {
  uint32_t ndim = 0;
  uint32_t extent = 0;
  uint64_t cells = 0;
  double baseline_ms = 0.0;
  double fused_ms = 0.0;
  uint64_t ops = 0;
  bool bit_identical = false;
  bool ops_equal = false;
};

// GB/s over the cube's input bytes: both paths read the same cube, so the
// column doubles as an apples-to-apples throughput figure whose ratio is
// exactly the speedup.
double InputGBps(uint64_t cells, double ms) {
  if (ms <= 0.0) return 0.0;
  return static_cast<double>(cells) * 8.0 / (ms * 1e6);
}

HeadlineResult RunHeadlineCase(uint32_t d, uint32_t n, int reps) {
  HeadlineResult r;
  r.ndim = d;
  r.extent = n;
  const vecube::Tensor cube = MakeCube(d, n, 5);
  r.cells = cube.size();

  vecube::OpCounter base_ops;
  double base_total = 0.0;
  r.baseline_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    base_ops.Reset();
    const auto start = std::chrono::steady_clock::now();
    base_total = BaselineGrandTotal(cube, &base_ops);
    const double ms = MillisSince(start);
    if (ms < r.baseline_ms) r.baseline_ms = ms;
  }

  vecube::ScratchArena arena;
  vecube::OpCounter fused_ops;
  double fused_total = 0.0;
  r.fused_ms = 1e300;
  for (int rep = 0; rep <= reps; ++rep) {  // extra rep 0 warms the arena
    fused_ops.Reset();
    const auto start = std::chrono::steady_clock::now();
    auto total = vecube::GrandTotal(cube, &fused_ops, nullptr, &arena);
    const double ms = MillisSince(start);
    if (!total.ok()) {
      std::fprintf(stderr, "fused GrandTotal failed: %s\n",
                   total.status().ToString().c_str());
      std::exit(1);
    }
    fused_total = *total;
    if (rep > 0 && ms < r.fused_ms) r.fused_ms = ms;
  }

  r.bit_identical =
      std::memcmp(&base_total, &fused_total, sizeof(double)) == 0;
  r.ops_equal =
      base_ops.adds == fused_ops.adds && base_ops.muls == fused_ops.muls;
  r.ops = fused_ops.adds;
  return r;
}

void BM_PartialSumInnermostAxis(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const vecube::Tensor cube = MakeCube(2, n, 1);
  for (auto _ : state) {
    auto out = vecube::PartialSum(cube, 1);
    benchmark::DoNotOptimize(out->raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_PartialSumInnermostAxis)->Arg(64)->Arg(256)->Arg(1024);

void BM_PartialSumOutermostAxis(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const vecube::Tensor cube = MakeCube(2, n, 2);
  for (auto _ : state) {
    auto out = vecube::PartialSum(cube, 0);
    benchmark::DoNotOptimize(out->raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_PartialSumOutermostAxis)->Arg(64)->Arg(256)->Arg(1024);

void BM_PartialPairFused(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const vecube::Tensor cube = MakeCube(2, n, 3);
  for (auto _ : state) {
    vecube::Tensor p, r;
    auto st = vecube::PartialPair(cube, 1, &p, &r);
    benchmark::DoNotOptimize(p.raw());
    benchmark::DoNotOptimize(r.raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_PartialPairFused)->Arg(64)->Arg(256)->Arg(1024);

void BM_SynthesizePair(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const vecube::Tensor cube = MakeCube(2, n, 4);
  vecube::Tensor p, r;
  auto st = vecube::PartialPair(cube, 1, &p, &r);
  for (auto _ : state) {
    auto out = vecube::SynthesizePair(p, r, 1);
    benchmark::DoNotOptimize(out->raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_SynthesizePair)->Arg(64)->Arg(256)->Arg(1024);

void BM_TotalAggregation(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const vecube::Tensor cube = MakeCube(d, n, 5);
  vecube::ScratchArena arena;
  for (auto _ : state) {
    auto total = vecube::GrandTotal(cube, nullptr, nullptr, &arena);
    benchmark::DoNotOptimize(*total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_TotalAggregation)
    ->Args({2, 256})
    ->Args({3, 64})
    ->Args({4, 16})
    ->Args({6, 8});

void BM_FullWaveletDecomposition(benchmark::State& state) {
  // Analysis of the whole cube into the wavelet basis (every block of the
  // cascade computed once).
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto shape = vecube::CubeShape::MakeSquare(2, n);
  vecube::Rng rng(6);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  for (auto _ : state) {
    vecube::Tensor low = *cube;
    while (low.extent(0) > 1 || low.extent(1) > 1) {
      for (uint32_t m = 0; m < 2; ++m) {
        if (low.extent(m) < 2) continue;
        vecube::Tensor p, r;
        auto st = vecube::PartialPair(low, m, &p, &r);
        benchmark::DoNotOptimize(r.raw());
        low = std::move(p);
      }
    }
    benchmark::DoNotOptimize(low.raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube->size()));
}
BENCHMARK(BM_FullWaveletDecomposition)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 3;
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
      if (reps < 1) reps = 1;
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  // Headline: fused+vectorized total aggregation vs the step-at-a-time
  // scalar baseline. The 64^4 cube (2^24 cells) is the acceptance case;
  // smoke mode shrinks it so CI can run the comparison in milliseconds.
  std::vector<std::pair<uint32_t, uint32_t>> cases;  // (ndim, extent)
  if (smoke) {
    cases = {{4, 16}};
  } else {
    cases = {{4, 16}, {3, 64}, {4, 64}};
  }

  std::printf("fused vs baseline total aggregation (dispatch: %s, best of "
              "%d)\n",
              vecube::VecOps().name, reps);
  std::printf("%-10s %12s %14s %14s %10s %10s %9s\n", "cube", "cells",
              "baseline ms", "fused ms", "base GB/s", "fused GB/s",
              "speedup");

  std::vector<HeadlineResult> results;
  bool ok = true;
  for (const auto& [d, n] : cases) {
    HeadlineResult r = RunHeadlineCase(d, n, reps);
    results.push_back(r);
    char label[32];
    std::snprintf(label, sizeof(label), "%u^%u", n, d);
    std::printf("%-10s %12llu %14.3f %14.3f %10.2f %10.2f %8.2fx\n", label,
                static_cast<unsigned long long>(r.cells), r.baseline_ms,
                r.fused_ms, InputGBps(r.cells, r.baseline_ms),
                InputGBps(r.cells, r.fused_ms), r.baseline_ms / r.fused_ms);
    if (!r.bit_identical || !r.ops_equal) {
      std::fprintf(stderr,
                   "FAIL %s: bit_identical=%d ops_equal=%d — fused path "
                   "diverged from baseline\n",
                   label, r.bit_identical ? 1 : 0, r.ops_equal ? 1 : 0);
      ok = false;
    }
  }

  std::FILE* json = std::fopen("BENCH_kernels.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"kernels\",\n");
    std::fprintf(json, "  \"dispatch\": \"%s\",\n", vecube::VecOps().name);
    std::fprintf(json, "  \"reps\": %d,\n", reps);
    std::fprintf(json, "  \"cases\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const HeadlineResult& r = results[i];
      std::fprintf(
          json,
          "    {\"name\": \"grand_total\", \"ndim\": %u, \"extent\": %u, "
          "\"cells\": %llu, \"ops\": %llu, \"baseline_ms\": %.3f, "
          "\"fused_ms\": %.3f, \"baseline_gbps\": %.3f, \"fused_gbps\": "
          "%.3f, \"speedup\": %.3f, \"bit_identical\": %s, \"ops_equal\": "
          "%s}%s\n",
          r.ndim, r.extent, static_cast<unsigned long long>(r.cells),
          static_cast<unsigned long long>(r.ops), r.baseline_ms, r.fused_ms,
          InputGBps(r.cells, r.baseline_ms), InputGBps(r.cells, r.fused_ms),
          r.baseline_ms / r.fused_ms, r.bit_identical ? "true" : "false",
          r.ops_equal ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_kernels.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_kernels.json\n");
    ok = false;
  }
  if (!ok) return 1;
  if (smoke) return 0;

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
