// Kernel throughput: the Haar partial-aggregation pair and its synthesis
// inverse (the building blocks of every view element operation), across
// cube sizes and axis positions. Not a paper figure — an ablation that
// documents the cost of the substrate.

#include <benchmark/benchmark.h>

#include "cube/shape.h"
#include "cube/synthetic.h"
#include "haar/cascade.h"
#include "haar/transform.h"
#include "util/rng.h"

namespace {

vecube::Tensor MakeCube(uint32_t d, uint32_t n, uint64_t seed) {
  auto shape = vecube::CubeShape::MakeSquare(d, n);
  vecube::Rng rng(seed);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  return std::move(cube).value();
}

void BM_PartialSumInnermostAxis(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const vecube::Tensor cube = MakeCube(2, n, 1);
  for (auto _ : state) {
    auto out = vecube::PartialSum(cube, 1);
    benchmark::DoNotOptimize(out->raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_PartialSumInnermostAxis)->Arg(64)->Arg(256)->Arg(1024);

void BM_PartialSumOutermostAxis(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const vecube::Tensor cube = MakeCube(2, n, 2);
  for (auto _ : state) {
    auto out = vecube::PartialSum(cube, 0);
    benchmark::DoNotOptimize(out->raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_PartialSumOutermostAxis)->Arg(64)->Arg(256)->Arg(1024);

void BM_PartialPairFused(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const vecube::Tensor cube = MakeCube(2, n, 3);
  for (auto _ : state) {
    vecube::Tensor p, r;
    auto st = vecube::PartialPair(cube, 1, &p, &r);
    benchmark::DoNotOptimize(p.raw());
    benchmark::DoNotOptimize(r.raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_PartialPairFused)->Arg(64)->Arg(256)->Arg(1024);

void BM_SynthesizePair(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const vecube::Tensor cube = MakeCube(2, n, 4);
  vecube::Tensor p, r;
  auto st = vecube::PartialPair(cube, 1, &p, &r);
  for (auto _ : state) {
    auto out = vecube::SynthesizePair(p, r, 1);
    benchmark::DoNotOptimize(out->raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_SynthesizePair)->Arg(64)->Arg(256)->Arg(1024);

void BM_TotalAggregation(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const vecube::Tensor cube = MakeCube(d, n, 5);
  for (auto _ : state) {
    auto total = vecube::GrandTotal(cube);
    benchmark::DoNotOptimize(*total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube.size()));
}
BENCHMARK(BM_TotalAggregation)
    ->Args({2, 256})
    ->Args({3, 64})
    ->Args({4, 16})
    ->Args({6, 8});

void BM_FullWaveletDecomposition(benchmark::State& state) {
  // Analysis of the whole cube into the wavelet basis (every block of the
  // cascade computed once).
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto shape = vecube::CubeShape::MakeSquare(2, n);
  vecube::Rng rng(6);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  for (auto _ : state) {
    vecube::Tensor low = *cube;
    while (low.extent(0) > 1 || low.extent(1) > 1) {
      for (uint32_t m = 0; m < 2; ++m) {
        if (low.extent(m) < 2) continue;
        vecube::Tensor p, r;
        auto st = vecube::PartialPair(low, m, &p, &r);
        benchmark::DoNotOptimize(r.raw());
        low = std::move(p);
      }
    }
    benchmark::DoNotOptimize(low.raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube->size()));
}
BENCHMARK(BM_FullWaveletDecomposition)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
