// Parallel batch-assembly benchmark: times AssembleBatch over all 2^d
// aggregated views of a d-dimensional cube at several thread counts and
// verifies the determinism invariant along the way — measured OpCounter
// totals must be identical at every thread count (threading changes wall
// time, never the operation count the paper's cost model predicts).
//
// Default configuration is the 2^24-cell cube (extent 64, 4 dims) with
// the cube-only store (the paper's [D] strategy) — batch assembly then
// aggregates every marginal from the base cube, the memory-friendly way
// to exercise the threaded kernels at this scale. Emits
// BENCH_parallel.json in the working directory so the perf trajectory
// can accumulate across revisions.
//
// Usage: bench_parallel [extent] [ndim] [threads]
//   extent   per-dimension domain size (default 64)
//   ndim     number of dimensions      (default 4)
//   threads  parallel thread count     (default: hardware concurrency)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/shape.h"
#include "cube/synthetic.h"
#include "haar/transform.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct RunResult {
  uint32_t threads = 1;
  double best_ms = 0.0;
  uint64_t ops = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const uint32_t extent = argc > 1 ? std::atoi(argv[1]) : 64;
  const uint32_t ndim = argc > 2 ? std::atoi(argv[2]) : 4;
  const uint32_t parallel_threads =
      argc > 3 ? std::atoi(argv[3]) : vecube::ThreadPool::DefaultThreadCount();
  constexpr int kReps = 3;

  auto shape_result = vecube::CubeShape::MakeSquare(ndim, extent);
  if (!shape_result.ok()) {
    std::fprintf(stderr, "bad shape: %s\n",
                 shape_result.status().ToString().c_str());
    return 1;
  }
  const vecube::CubeShape shape = *shape_result;
  std::printf("parallel batch assembly: %u^%u cube (%llu cells), cube-only "
              "store\n",
              extent, ndim, static_cast<unsigned long long>(shape.volume()));

  vecube::Rng rng(24);
  auto cube = vecube::UniformIntegerCube(shape, &rng, -9, 9);
  if (!cube.ok()) return 1;
  vecube::ElementComputer computer(shape, &*cube);
  auto store = computer.Materialize(vecube::CubeOnlySet(shape));
  if (!store.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  // All 2^d aggregated views: the canonical "answer every marginal" batch.
  std::vector<vecube::ElementId> targets;
  for (uint32_t mask = 0; mask < (1u << ndim); ++mask) {
    auto view = vecube::ElementId::AggregatedView(mask, shape);
    if (!view.ok()) return 1;
    targets.push_back(*view);
  }

  vecube::AssemblyEngine planner(&*store);
  uint64_t sum_plan_cost = 0;
  for (const vecube::ElementId& target : targets) {
    const uint64_t plan = planner.PlanCost(target);
    if (plan == vecube::kInfiniteCost) {
      std::fprintf(stderr, "unassemblable target\n");
      return 1;
    }
    sum_plan_cost += plan;
  }

  std::vector<uint32_t> thread_counts = {1};
  if (parallel_threads > 1) thread_counts.push_back(parallel_threads);

  std::vector<RunResult> results;
  for (uint32_t threads : thread_counts) {
    std::unique_ptr<vecube::ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<vecube::ThreadPool>(threads);
    vecube::AssemblyEngine engine(&*store, pool.get());

    RunResult run;
    run.threads = threads;
    run.best_ms = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      vecube::OpCounter ops;
      const auto start = std::chrono::steady_clock::now();
      auto batch = engine.AssembleBatch(targets, &ops);
      const double ms = MillisSince(start);
      if (!batch.ok()) {
        std::fprintf(stderr, "assembly failed: %s\n",
                     batch.status().ToString().c_str());
        return 1;
      }
      if (ms < run.best_ms) run.best_ms = ms;
      if (rep == 0) {
        run.ops = ops.adds;
      } else if (ops.adds != run.ops) {
        std::fprintf(stderr, "FAIL: op count drifted across reps\n");
        return 1;
      }
    }
    results.push_back(run);
    std::printf("  threads=%-3u best of %d: %10.2f ms   ops=%llu\n", threads,
                kReps, run.best_ms, static_cast<unsigned long long>(run.ops));
  }

  // Determinism invariant: identical measured ops at every thread count,
  // and batch sharing never exceeds the sum of individual plan costs.
  for (const RunResult& run : results) {
    if (run.ops != results.front().ops) {
      std::fprintf(stderr, "FAIL: ops differ across thread counts\n");
      return 1;
    }
  }
  if (results.front().ops > sum_plan_cost) {
    std::fprintf(stderr, "FAIL: batch ops exceed summed plan costs\n");
    return 1;
  }
  const double speedup =
      results.size() > 1 ? results.front().best_ms / results.back().best_ms
                         : 1.0;
  std::printf("  batch ops %llu <= sum of plan costs %llu; speedup %.2fx\n",
              static_cast<unsigned long long>(results.front().ops),
              static_cast<unsigned long long>(sum_plan_cost), speedup);

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"parallel_batch_assembly\",\n");
  std::fprintf(json, "  \"extent\": %u,\n  \"ndim\": %u,\n", extent, ndim);
  std::fprintf(json, "  \"cells\": %llu,\n",
               static_cast<unsigned long long>(shape.volume()));
  std::fprintf(json, "  \"targets\": %zu,\n", targets.size());
  std::fprintf(json, "  \"sum_plan_cost\": %llu,\n",
               static_cast<unsigned long long>(sum_plan_cost));
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(json,
                 "    {\"threads\": %u, \"best_ms\": %.3f, \"ops\": %llu}%s\n",
                 results[i].threads, results[i].best_ms,
                 static_cast<unsigned long long>(results[i].ops),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup\": %.3f\n", speedup);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("  wrote BENCH_parallel.json\n");
  return 0;
}
