// Parallel batch-assembly benchmark: times AssembleBatch over all 2^d
// aggregated views of a d-dimensional cube across a thread sweep and a
// dyadic shard sweep, and verifies the determinism invariant along the
// way — measured OpCounter totals must be identical at every thread
// count AND every shard count (threading and sharding change wall time,
// never the operation count the paper's cost model predicts).
//
// Default configuration is the 2^24-cell cube (extent 64, 4 dims) with
// the cube-only store (the paper's [D] strategy) — batch assembly then
// aggregates every marginal from the base cube, the memory-friendly way
// to exercise the threaded kernels at this scale. Emits
// BENCH_parallel.json in the working directory so the perf trajectory
// can accumulate across revisions.
//
// Usage: bench_parallel [--smoke] [extent] [ndim] [threads]
//   --smoke  CI mode: a 2^16-cell cube, 1 rep — fast enough for the
//            release job while still crossing the shard-routing
//            threshold, so the ops-invariance accounting gates all run
//   extent   per-dimension domain size (default 64; 16 under --smoke)
//   ndim     number of dimensions      (default 4)
//   threads  max sweep thread count    (default: hardware concurrency)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/shape.h"
#include "cube/synthetic.h"
#include "haar/transform.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct RunResult {
  uint32_t threads = 1;
  uint32_t shards = 1;
  double best_ms = 0.0;
  uint64_t ops = 0;
};

// Best-of-kReps timed batch over `targets`; returns false on failure or
// on op-count drift across reps.
bool TimedBatch(const vecube::ElementStore& store,
                const std::vector<vecube::ElementId>& targets,
                uint32_t threads, uint32_t shards, int reps,
                RunResult* out) {
  std::unique_ptr<vecube::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<vecube::ThreadPool>(threads);
  vecube::AssemblyEngine engine(&store, pool.get(), nullptr, shards);

  out->threads = threads;
  out->shards = shards;
  out->best_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    vecube::OpCounter ops;
    const auto start = std::chrono::steady_clock::now();
    auto batch = engine.AssembleBatch(targets, &ops);
    const double ms = MillisSince(start);
    if (!batch.ok()) {
      std::fprintf(stderr, "assembly failed: %s\n",
                   batch.status().ToString().c_str());
      return false;
    }
    if (ms < out->best_ms) out->best_ms = ms;
    if (rep == 0) {
      out->ops = ops.adds;
    } else if (ops.adds != out->ops) {
      std::fprintf(stderr, "FAIL: op count drifted across reps\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int pos = 1;
  if (argc > pos && std::strcmp(argv[pos], "--smoke") == 0) {
    smoke = true;
    ++pos;
  }
  const uint32_t extent =
      argc > pos ? std::atoi(argv[pos]) : (smoke ? 16u : 64u);
  const uint32_t ndim = argc > pos + 1 ? std::atoi(argv[pos + 1]) : 4;
  const uint32_t hardware_threads = std::max(
      1u, static_cast<uint32_t>(std::thread::hardware_concurrency()));
  const uint32_t max_threads = argc > pos + 2
                                   ? std::atoi(argv[pos + 2])
                                   : vecube::ThreadPool::DefaultThreadCount();
  const int reps = smoke ? 1 : 3;

  auto shape_result = vecube::CubeShape::MakeSquare(ndim, extent);
  if (!shape_result.ok()) {
    std::fprintf(stderr, "bad shape: %s\n",
                 shape_result.status().ToString().c_str());
    return 1;
  }
  const vecube::CubeShape shape = *shape_result;
  std::printf("parallel batch assembly: %u^%u cube (%llu cells), cube-only "
              "store, %u hardware threads%s\n",
              extent, ndim, static_cast<unsigned long long>(shape.volume()),
              hardware_threads, smoke ? " [smoke]" : "");

  vecube::Rng rng(24);
  auto cube = vecube::UniformIntegerCube(shape, &rng, -9, 9);
  if (!cube.ok()) return 1;
  vecube::ElementComputer computer(shape, &*cube);
  auto store = computer.Materialize(vecube::CubeOnlySet(shape));
  if (!store.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  // All 2^d aggregated views: the canonical "answer every marginal" batch.
  std::vector<vecube::ElementId> targets;
  for (uint32_t mask = 0; mask < (1u << ndim); ++mask) {
    auto view = vecube::ElementId::AggregatedView(mask, shape);
    if (!view.ok()) return 1;
    targets.push_back(*view);
  }

  vecube::AssemblyEngine planner(&*store);
  uint64_t sum_plan_cost = 0;
  for (const vecube::ElementId& target : targets) {
    const uint64_t plan = planner.PlanCost(target);
    if (plan == vecube::kInfiniteCost) {
      std::fprintf(stderr, "unassemblable target\n");
      return 1;
    }
    sum_plan_cost += plan;
  }

  // Thread sweep: powers of two from 1 up to the requested maximum (the
  // shard budget follows the pool by default), then a shard sweep at the
  // top thread count to isolate decomposition effects from pool size.
  std::vector<RunResult> thread_runs;
  uint32_t top_threads = 1;
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    top_threads = threads;
    RunResult run;
    if (!TimedBatch(*store, targets, threads, 0, reps, &run)) return 1;
    thread_runs.push_back(run);
    std::printf("  threads=%-3u best of %d: %10.2f ms   ops=%llu\n", threads,
                reps, run.best_ms, static_cast<unsigned long long>(run.ops));
  }

  std::vector<RunResult> shard_runs;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    RunResult run;
    if (!TimedBatch(*store, targets, top_threads, shards, reps, &run)) {
      return 1;
    }
    shard_runs.push_back(run);
    std::printf("  shards=%-3u (threads=%u) best of %d: %10.2f ms   "
                "ops=%llu\n",
                shards, top_threads, reps, run.best_ms,
                static_cast<unsigned long long>(run.ops));
  }

  // Determinism invariant: identical measured ops at every thread count
  // and every shard count, and batch sharing never exceeds the sum of
  // individual plan costs. This is the accounting gate the CI smoke run
  // exists for.
  const uint64_t baseline_ops = thread_runs.front().ops;
  for (const RunResult& run : thread_runs) {
    if (run.ops != baseline_ops) {
      std::fprintf(stderr, "FAIL: ops differ across thread counts\n");
      return 1;
    }
  }
  for (const RunResult& run : shard_runs) {
    if (run.ops != baseline_ops) {
      std::fprintf(stderr, "FAIL: ops differ across shard counts\n");
      return 1;
    }
  }
  if (baseline_ops > sum_plan_cost) {
    std::fprintf(stderr, "FAIL: batch ops exceed summed plan costs\n");
    return 1;
  }
  const double speedup = thread_runs.size() > 1
                             ? thread_runs.front().best_ms /
                                   thread_runs.back().best_ms
                             : 1.0;
  std::printf("  batch ops %llu <= sum of plan costs %llu; speedup %.2fx\n",
              static_cast<unsigned long long>(baseline_ops),
              static_cast<unsigned long long>(sum_plan_cost), speedup);

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"parallel_batch_assembly\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"extent\": %u,\n  \"ndim\": %u,\n", extent, ndim);
  std::fprintf(json, "  \"cells\": %llu,\n",
               static_cast<unsigned long long>(shape.volume()));
  std::fprintf(json, "  \"hardware_threads\": %u,\n", hardware_threads);
  std::fprintf(json, "  \"targets\": %zu,\n", targets.size());
  std::fprintf(json, "  \"sum_plan_cost\": %llu,\n",
               static_cast<unsigned long long>(sum_plan_cost));
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < thread_runs.size(); ++i) {
    std::fprintf(json,
                 "    {\"threads\": %u, \"best_ms\": %.3f, \"ops\": %llu}%s\n",
                 thread_runs[i].threads, thread_runs[i].best_ms,
                 static_cast<unsigned long long>(thread_runs[i].ops),
                 i + 1 < thread_runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"shard_runs\": [\n");
  for (size_t i = 0; i < shard_runs.size(); ++i) {
    std::fprintf(json,
                 "    {\"shards\": %u, \"threads\": %u, \"best_ms\": %.3f, "
                 "\"ops\": %llu}%s\n",
                 shard_runs[i].shards, shard_runs[i].threads,
                 shard_runs[i].best_ms,
                 static_cast<unsigned long long>(shard_runs[i].ops),
                 i + 1 < shard_runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup\": %.3f\n", speedup);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("  wrote BENCH_parallel.json\n");
  return 0;
}
