// Assembly-engine ablation: measured work to answer aggregated-view
// queries from (a) the data cube only, (b) the wavelet basis, (c) the
// Algorithm-1 basis tuned to the workload, and (d) a redundant Algorithm-2
// selection. This executes the actual Haar kernels — wall-clock numbers
// for the analytic costs that Figures 8 and 9 report.

#include <benchmark/benchmark.h>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "util/rng.h"
#include "workload/population.h"

namespace {

struct Setup {
  vecube::CubeShape shape;
  vecube::Tensor cube;
  vecube::QueryPopulation population;
};

Setup MakeSetup() {
  auto shape = vecube::CubeShape::MakeSquare(4, 16);
  vecube::Rng rng(7);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  vecube::Rng prng(8);
  auto population = vecube::ZipfViewPopulation(*shape, &prng, 1.2);
  return Setup{*shape, std::move(cube).value(),
               std::move(population).value()};
}

void RunWorkload(benchmark::State& state,
                 const std::vector<vecube::ElementId>& set) {
  Setup setup = MakeSetup();
  vecube::ElementComputer computer(setup.shape, &setup.cube);
  auto store = computer.Materialize(set);
  if (!store.ok()) {
    state.SkipWithError("materialization failed");
    return;
  }
  vecube::AssemblyEngine engine(&*store);
  vecube::Rng rng(9);
  uint64_t total_ops = 0;
  for (auto _ : state) {
    const vecube::ElementId& view = setup.population.Sample(&rng);
    vecube::OpCounter ops;
    auto answer = engine.Assemble(view, &ops);
    benchmark::DoNotOptimize(answer->raw());
    total_ops += ops.adds;
  }
  state.counters["adds_per_query"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kAvgIterations);
  state.counters["storage_rel"] = store->RelativeStorage();
}

void BM_AssembleFromCubeOnly(benchmark::State& state) {
  Setup setup = MakeSetup();
  RunWorkload(state, vecube::CubeOnlySet(setup.shape));
}
BENCHMARK(BM_AssembleFromCubeOnly);

void BM_AssembleFromWaveletBasis(benchmark::State& state) {
  Setup setup = MakeSetup();
  RunWorkload(state, vecube::WaveletBasisSet(setup.shape));
}
BENCHMARK(BM_AssembleFromWaveletBasis);

void BM_AssembleFromAlgorithm1Basis(benchmark::State& state) {
  Setup setup = MakeSetup();
  auto selection = vecube::SelectMinCostBasis(setup.shape, setup.population);
  if (!selection.ok()) {
    state.SkipWithError("selection failed");
    return;
  }
  RunWorkload(state, selection->basis);
}
BENCHMARK(BM_AssembleFromAlgorithm1Basis);

void BM_AssembleFromViewHierarchy(benchmark::State& state) {
  Setup setup = MakeSetup();
  RunWorkload(state, vecube::ViewHierarchySet(setup.shape));
}
BENCHMARK(BM_AssembleFromViewHierarchy);

// Multi-query optimization targets: the full intermediate pyramid of a
// 3-D cube nests heavily (every level is the P-child of the previous),
// so batching shares almost all synthesis work.
std::vector<vecube::ElementId> PyramidTargets(const vecube::CubeShape& shape) {
  return vecube::ViewElementGraph(shape).IntermediateElements();
}

void BM_AssemblePyramidIndividually(benchmark::State& state) {
  auto shape = vecube::CubeShape::MakeSquare(3, 16);
  vecube::Rng rng(7);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  vecube::ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(vecube::WaveletBasisSet(*shape));
  vecube::AssemblyEngine engine(&*store);
  const auto targets = PyramidTargets(*shape);
  uint64_t total_ops = 0;
  for (auto _ : state) {
    for (const vecube::ElementId& id : targets) {
      vecube::OpCounter ops;
      auto out = engine.Assemble(id, &ops);
      benchmark::DoNotOptimize(out->raw());
      total_ops += ops.adds;
    }
  }
  state.counters["adds_per_round"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AssemblePyramidIndividually);

void BM_AssemblePyramidBatched(benchmark::State& state) {
  auto shape = vecube::CubeShape::MakeSquare(3, 16);
  vecube::Rng rng(7);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  vecube::ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(vecube::WaveletBasisSet(*shape));
  vecube::AssemblyEngine engine(&*store);
  const auto targets = PyramidTargets(*shape);
  uint64_t total_ops = 0;
  for (auto _ : state) {
    vecube::OpCounter ops;
    auto out = engine.AssembleBatch(targets, &ops);
    benchmark::DoNotOptimize(out->size());
    total_ops += ops.adds;
  }
  state.counters["adds_per_round"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AssemblePyramidBatched);

void BM_PlanningOverhead(benchmark::State& state) {
  // Cost of the Procedure-3 planning pass alone (memoized afterwards).
  Setup setup = MakeSetup();
  vecube::ElementComputer computer(setup.shape, &setup.cube);
  auto selection = vecube::SelectMinCostBasis(setup.shape, setup.population);
  auto store = computer.Materialize(selection->basis);
  for (auto _ : state) {
    vecube::AssemblyEngine engine(&*store);  // fresh memo each iteration
    uint64_t total = 0;
    for (const vecube::QuerySpec& q : setup.population.queries()) {
      total += engine.PlanCost(q.view);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PlanningOverhead);

}  // namespace

BENCHMARK_MAIN();
