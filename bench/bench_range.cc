// Range-aggregation ablation (Section 6 made executable): dyadic
// decomposition over the intermediate-element pyramid vs naive scans vs
// the prefix-sum cube comparator, across range sizes.

#include <benchmark/benchmark.h>

#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "range/prefix_baseline.h"
#include "range/range_engine.h"
#include "util/rng.h"

namespace {

struct Setup {
  vecube::CubeShape shape;
  vecube::Tensor cube;
  vecube::ElementStore pyramid;
};

Setup MakeSetup(uint32_t n) {
  auto shape = vecube::CubeShape::MakeSquare(2, n);
  vecube::Rng rng(11);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  vecube::ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(
      vecube::ViewElementGraph(*shape).IntermediateElements());
  return Setup{*shape, std::move(cube).value(), std::move(store).value()};
}

vecube::RangeSpec RandomRange(const vecube::CubeShape& shape,
                              vecube::Rng* rng) {
  std::vector<uint32_t> start(shape.ndim()), width(shape.ndim());
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    start[m] = static_cast<uint32_t>(rng->UniformU64(shape.extent(m)));
    width[m] = 1 + static_cast<uint32_t>(
                       rng->UniformU64(shape.extent(m) - start[m]));
  }
  return *vecube::RangeSpec::Make(start, width, shape);
}

void BM_RangeSumDyadicPyramid(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<uint32_t>(state.range(0)));
  vecube::RangeEngine engine(&setup.pyramid,
                             vecube::MissingElementPolicy::kError);
  vecube::Rng rng(21);
  for (auto _ : state) {
    const auto range = RandomRange(setup.shape, &rng);
    auto sum = engine.RangeSum(range);
    benchmark::DoNotOptimize(*sum);
  }
}
BENCHMARK(BM_RangeSumDyadicPyramid)->Arg(64)->Arg(256)->Arg(1024);

void BM_RangeSumNaiveScan(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<uint32_t>(state.range(0)));
  vecube::Rng rng(21);  // identical query stream
  for (auto _ : state) {
    const auto range = RandomRange(setup.shape, &rng);
    auto sum = vecube::NaiveRangeSum(setup.cube, setup.shape, range);
    benchmark::DoNotOptimize(*sum);
  }
}
BENCHMARK(BM_RangeSumNaiveScan)->Arg(64)->Arg(256)->Arg(1024);

void BM_RangeSumPrefixCube(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<uint32_t>(state.range(0)));
  auto prefix = vecube::PrefixSumCube::Build(setup.shape, setup.cube);
  vecube::Rng rng(21);
  for (auto _ : state) {
    const auto range = RandomRange(setup.shape, &rng);
    auto sum = prefix->RangeSum(range);
    benchmark::DoNotOptimize(*sum);
  }
}
BENCHMARK(BM_RangeSumPrefixCube)->Arg(64)->Arg(256)->Arg(1024);

void BM_RangeSumAligned(benchmark::State& state) {
  // Power-of-two aligned ranges: the Eq. 40 fast path, one cell read per
  // dimension combination.
  Setup setup = MakeSetup(256);
  vecube::RangeEngine engine(&setup.pyramid,
                             vecube::MissingElementPolicy::kError);
  vecube::Rng rng(22);
  for (auto _ : state) {
    const uint32_t level = 1 + static_cast<uint32_t>(rng.UniformU64(7));
    const uint32_t size = 1u << level;
    std::vector<uint32_t> start(2), width(2, size);
    for (uint32_t m = 0; m < 2; ++m) {
      start[m] = size * static_cast<uint32_t>(rng.UniformU64(256 / size));
    }
    auto range = vecube::RangeSpec::Make(start, width, setup.shape);
    auto sum = engine.RangeSum(*range);
    benchmark::DoNotOptimize(*sum);
  }
}
BENCHMARK(BM_RangeSumAligned);

void BM_PyramidConstruction(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto shape = vecube::CubeShape::MakeSquare(2, n);
  vecube::Rng rng(23);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  for (auto _ : state) {
    vecube::ElementComputer computer(*shape, &*cube);
    auto store = computer.Materialize(
        vecube::ViewElementGraph(*shape).IntermediateElements());
    benchmark::DoNotOptimize(store->StorageCells());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cube->size()));
}
BENCHMARK(BM_PyramidConstruction)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
