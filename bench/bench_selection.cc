// Selection-algorithm runtime ablation: Algorithm 1's space-frequency DP
// across graph sizes (the paper claims O((d+1) N_ve)), and one greedy
// Algorithm-2 stage across candidate-pool sizes.

#include <benchmark/benchmark.h>

#include "core/basis.h"
#include "core/graph.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "select/procedure3.h"
#include "util/rng.h"
#include "workload/population.h"

namespace {

void BM_Algorithm1(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  auto shape = vecube::CubeShape::MakeSquare(d, n);
  vecube::Rng rng(31);
  auto population = vecube::RandomViewPopulation(*shape, &rng);
  for (auto _ : state) {
    auto selection = vecube::SelectMinCostBasis(*shape, *population);
    benchmark::DoNotOptimize(selection->predicted_cost);
  }
  state.counters["graph_nodes"] = static_cast<double>(
      vecube::ViewElementGraph(*shape).NumElements());
}
BENCHMARK(BM_Algorithm1)
    ->Args({2, 16})
    ->Args({2, 256})
    ->Args({3, 16})
    ->Args({4, 8})
    ->Args({4, 16})
    ->Unit(benchmark::kMillisecond);

void BM_Procedure3Evaluation(benchmark::State& state) {
  // One full Procedure-3 evaluation of a redundant set — the inner loop of
  // the greedy Algorithm 2.
  auto shape = vecube::CubeShape::MakeSquare(4, 4);
  vecube::Rng rng(32);
  auto population = vecube::RandomViewPopulation(*shape, &rng);
  auto selection = vecube::SelectMinCostBasis(*shape, *population);
  std::vector<vecube::ElementId> set = selection->basis;
  set.push_back(vecube::ElementId::Root(4));
  for (auto _ : state) {
    auto calc = vecube::Procedure3Calculator::Make(*shape, set);
    benchmark::DoNotOptimize(calc->TotalCost(*population));
  }
}
BENCHMARK(BM_Procedure3Evaluation);

void BM_Algorithm2OneStage(benchmark::State& state) {
  // A single greedy stage: scan the full candidate pool once.
  auto shape = vecube::CubeShape::MakeSquare(4, 4);
  vecube::Rng rng(33);
  auto population = vecube::RandomViewPopulation(*shape, &rng);
  auto selection = vecube::SelectMinCostBasis(*shape, *population);
  const uint64_t base_storage =
      vecube::StorageVolume(selection->basis, *shape);
  for (auto _ : state) {
    vecube::GreedyOptions options;
    // Room for exactly one largest addition: a single greedy stage.
    options.storage_target_cells = base_storage + 1;
    auto frontier = vecube::GreedySelect(*shape, *population,
                                         selection->basis, options);
    benchmark::DoNotOptimize(frontier->size());
  }
  state.counters["candidates"] = static_cast<double>(
      vecube::ViewElementGraph(*shape).NumElements());
  state.SetLabel("one greedy stage over the full element pool");
}
BENCHMARK(BM_Algorithm2OneStage)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
