// MOLAP-vs-ROLAP ablation, the contrast the paper's introduction draws:
// answering aggregated views by assembling materialized view elements vs
// re-scanning the fact relation with a hash GROUP BY each time.

#include <benchmark/benchmark.h>

#include "core/assembly.h"
#include "core/computer.h"
#include "cube/cube_builder.h"
#include "cube/synthetic.h"
#include "rolap/group_by.h"
#include "select/algorithm1.h"
#include "util/rng.h"
#include "workload/population.h"

namespace {

struct Setup {
  vecube::CubeShape shape;
  vecube::Relation relation;
  vecube::Tensor cube;
  vecube::QueryPopulation population;
};

Setup MakeSetup(uint64_t rows) {
  auto shape = vecube::CubeShape::Make({16, 8, 32});
  vecube::Rng rng(5);
  auto relation = vecube::SyntheticSalesRelation(*shape, &rng, rows, 1.1);
  auto built = vecube::CubeBuilder::Build(*relation, *shape);
  vecube::Rng prng(6);
  auto population = vecube::ZipfViewPopulation(*shape, &prng, 1.2);
  return Setup{*shape, std::move(relation).value(), std::move(built->cube),
               std::move(population).value()};
}

void BM_RolapGroupByPerView(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<uint64_t>(state.range(0)));
  vecube::Rng rng(7);
  for (auto _ : state) {
    const vecube::ElementId& view = setup.population.Sample(&rng);
    uint32_t mask = 0;
    for (uint32_t m = 0; m < setup.shape.ndim(); ++m) {
      if (view.dim(m).level > 0) mask |= 1u << m;
    }
    auto out = vecube::GroupBySum(setup.relation, setup.shape, mask);
    benchmark::DoNotOptimize(out->raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.relation.num_rows()));
}
BENCHMARK(BM_RolapGroupByPerView)->Arg(10000)->Arg(100000);

void BM_MolapAssemblyPerView(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<uint64_t>(state.range(0)));
  auto selection = vecube::SelectMinCostBasis(setup.shape, setup.population);
  vecube::ElementComputer computer(setup.shape, &setup.cube);
  auto store = computer.Materialize(selection->basis);
  vecube::AssemblyEngine engine(&*store);
  vecube::Rng rng(7);
  for (auto _ : state) {
    const vecube::ElementId& view = setup.population.Sample(&rng);
    auto out = engine.Assemble(view);
    benchmark::DoNotOptimize(out->raw());
  }
}
BENCHMARK(BM_MolapAssemblyPerView)->Arg(10000)->Arg(100000);

void BM_RolapRangeScan(benchmark::State& state) {
  Setup setup = MakeSetup(100000);
  vecube::Rng rng(8);
  for (auto _ : state) {
    std::vector<uint32_t> start(3), width(3);
    for (uint32_t m = 0; m < 3; ++m) {
      start[m] =
          static_cast<uint32_t>(rng.UniformU64(setup.shape.extent(m)));
      width[m] = 1 + static_cast<uint32_t>(
                         rng.UniformU64(setup.shape.extent(m) - start[m]));
    }
    auto sum =
        vecube::ScanRangeSum(setup.relation, setup.shape, start, width);
    benchmark::DoNotOptimize(*sum);
  }
}
BENCHMARK(BM_RolapRangeScan);

}  // namespace

BENCHMARK_MAIN();
