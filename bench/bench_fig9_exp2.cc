// Reproduces Experiment 2 / Figure 9 of the paper (Section 7.2.2):
// storage cost vs processing cost of redundant materialization, on a
// 4-dimensional data cube with domain size 4 per dimension.
//
// Two greedy approaches, averaged over 10 trials of random view-access
// frequencies:
//   [D] start from the materialized data cube, greedily add aggregated
//       views (the Harinarayan et al. style baseline);
//   [V] start from the minimum-cost non-redundant view element basis
//       (Algorithm 1), greedily add view elements (Algorithm 2).
//
// Costs are evaluated with Procedure 3; storage is relative to Vol(A).
// The maximal storage cost (all views materialized) is (n+1)^d / n^d =
// 2.44. Expected shape: [V]'s frontier starts below [D] (point a vs b)
// and stays at or below it until both converge to zero processing cost
// (point d); point c marks where [D] first matches [V]'s initial cost.

#include <cstdio>
#include <vector>

#include "core/basis.h"
#include "cube/shape.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "util/rng.h"
#include "workload/population.h"

namespace {

// Processing cost of a frontier at a given storage budget: the last step
// whose storage fits.
double FrontierCostAt(const std::vector<vecube::GreedyStep>& frontier,
                      uint64_t storage) {
  double cost = frontier.front().processing_cost;
  for (const vecube::GreedyStep& step : frontier) {
    if (step.storage_cells <= storage) cost = step.processing_cost;
  }
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 10;

  auto shape_result = vecube::CubeShape::MakeSquare(4, 4);
  if (!shape_result.ok()) return 1;
  const vecube::CubeShape shape = *shape_result;
  const uint64_t vol = shape.volume();  // 256
  const uint64_t max_storage =
      vecube::StorageVolume(vecube::ViewHierarchySet(shape), shape);  // 625

  std::printf("Experiment 2 (Figure 9): storage vs processing cost, 4-D "
              "cube, n = 4\n");
  std::printf("Vol(A) = %llu cells; max storage (all views) = %llu = %.2f "
              "relative (paper: 2.44)\n\n",
              static_cast<unsigned long long>(vol),
              static_cast<unsigned long long>(max_storage),
              static_cast<double>(max_storage) / static_cast<double>(vol));

  vecube::Rng rng(19980603);
  std::vector<std::vector<vecube::GreedyStep>> d_frontiers, v_frontiers;
  double sum_point_a = 0, sum_point_b = 0;

  for (int trial = 0; trial < trials; ++trial) {
    auto population = vecube::RandomViewPopulation(shape, &rng);
    if (!population.ok()) return 1;

    // [D]: cube + greedy views.
    vecube::GreedyOptions d_options;
    d_options.storage_target_cells = max_storage;
    d_options.pool = vecube::CandidatePool::kAggregatedViews;
    auto d_frontier = vecube::GreedySelect(shape, *population,
                                           vecube::CubeOnlySet(shape),
                                           d_options);
    // [V]: Algorithm 1 basis + greedy view elements (Algorithm 2).
    auto basis = vecube::SelectMinCostBasis(shape, *population);
    if (!d_frontier.ok() || !basis.ok()) return 1;
    vecube::GreedyOptions v_options;
    v_options.storage_target_cells = max_storage;
    v_options.pool = vecube::CandidatePool::kAllElements;
    // Section 7.2.2: "add the best view, and remove the obsolete view
    // elements" — required for [V] to converge to point d.
    v_options.prune_obsolete = true;
    auto v_frontier =
        vecube::GreedySelect(shape, *population, basis->basis, v_options);
    if (!v_frontier.ok()) return 1;

    sum_point_b += d_frontier->front().processing_cost;
    sum_point_a += v_frontier->front().processing_cost;
    d_frontiers.push_back(std::move(d_frontier).value());
    v_frontiers.push_back(std::move(v_frontier).value());
  }

  // Average the frontiers on a relative-storage grid.
  std::printf("%-10s %16s %16s\n", "storage", "[D] greedy views",
              "[V] greedy elements");
  double point_c = -1.0;
  const double point_a = sum_point_a / trials;
  const double point_b = sum_point_b / trials;
  for (uint64_t storage = vol; storage <= max_storage; storage += 8) {
    double d_cost = 0, v_cost = 0;
    for (int t = 0; t < trials; ++t) {
      d_cost += FrontierCostAt(d_frontiers[static_cast<size_t>(t)], storage);
      v_cost += FrontierCostAt(v_frontiers[static_cast<size_t>(t)], storage);
    }
    d_cost /= trials;
    v_cost /= trials;
    std::printf("%-10.3f %16.2f %16.2f\n",
                static_cast<double>(storage) / static_cast<double>(vol),
                d_cost, v_cost);
    if (point_c < 0 && d_cost <= point_a) {
      point_c = static_cast<double>(storage) / static_cast<double>(vol);
    }
  }

  std::printf("\nMarker points (averaged over %d trials):\n", trials);
  std::printf("  a: [V] initial basis    storage 1.00, cost %.2f\n", point_a);
  std::printf("  b: [D] data cube        storage 1.00, cost %.2f\n", point_b);
  if (point_c > 0) {
    std::printf("  c: [D] matches [V]'s initial cost at storage %.3f "
                "(paper: ~1.25)\n", point_c);
  } else {
    std::printf("  c: [D] never matches [V]'s initial cost within the "
                "storage range\n");
  }
  std::printf("  d: both methods converge to zero processing cost "
              "([D] final %.3f, [V] final %.3f)\n",
              d_frontiers[0].back().processing_cost,
              v_frontiers[0].back().processing_cost);
  const bool a_not_worse_than_b = point_a <= point_b + 1e-9;
  std::printf("\npoint a <= point b: %s (paper: 'never worse')\n",
              a_not_worse_than_b ? "yes" : "NO");
  return a_not_worse_than_b ? 0 : 1;
}
