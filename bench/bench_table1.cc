// Reproduces Table 1 of the paper: the number of view elements of each
// type (aggregated views N_av, intermediate N_iv, residual N_rv, total
// N_ve) in the view element graphs of various sizes.
//
// The closed forms (Eqs. 17-20) are printed for the paper's five (d, n)
// configurations, and cross-validated by exhaustive enumeration of the
// graph wherever that is feasible (N_ve <= 2^23).

#include <cinttypes>
#include <cstdio>

#include "core/counts.h"
#include "core/graph.h"
#include "cube/shape.h"

namespace {

struct Config {
  uint32_t d;
  uint32_t n;
  // The values printed in the paper, for side-by-side comparison.
  uint64_t paper_av, paper_iv, paper_rv, paper_ve;
};

constexpr Config kConfigs[] = {
    {2, 256, 4, 81, 261040, 261121},
    {3, 32, 8, 216, 249831, 250047},
    {4, 16, 16, 625, 922896, 923521},
    {5, 8, 32, 1024, 758351, 759375},
    {8, 4, 256, 6561, 5758240, 5764801},
};

}  // namespace

int main() {
  std::printf("Table 1: number of view elements of each type "
              "(d = dims, n = domain size per dim)\n");
  std::printf("%-4s %-5s | %12s %12s %12s %12s | %s\n", "d", "n", "N_av",
              "N_iv", "N_rv", "N_ve", "vs paper / enumeration");
  std::printf("-----------------------------------------------------------"
              "--------------------------------\n");

  bool all_match = true;
  for (const Config& config : kConfigs) {
    auto shape = vecube::CubeShape::MakeSquare(config.d, config.n);
    if (!shape.ok()) {
      std::fprintf(stderr, "shape error: %s\n",
                   shape.status().ToString().c_str());
      return 1;
    }
    const vecube::ElementCensus census = vecube::CensusClosedForm(*shape);
    const bool matches_paper = census.aggregated == config.paper_av &&
                               census.intermediate == config.paper_iv &&
                               census.residual == config.paper_rv &&
                               census.total == config.paper_ve;
    all_match = all_match && matches_paper;

    std::string check = matches_paper ? "= paper" : "MISMATCH vs paper";
    if (census.total <= (uint64_t{1} << 23)) {
      const vecube::ElementCensus enumerated =
          vecube::CensusByEnumeration(*shape);
      check += (enumerated == census) ? ", = enumeration"
                                      : ", MISMATCH vs enumeration";
      all_match = all_match && (enumerated == census);
    }
    std::printf("%-4u %-5u | %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                " %12" PRIu64 " | %s\n",
                config.d, config.n, census.aggregated, census.intermediate,
                census.residual, census.total, check.c_str());
  }
  std::printf("\n%s\n", all_match
                            ? "All five configurations match the paper "
                              "(and enumeration where feasible)."
                            : "MISMATCH detected — see rows above.");
  return all_match ? 0 : 1;
}
