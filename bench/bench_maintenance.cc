// Maintenance ablation: incremental point-delta updates to a materialized
// element store vs full rematerialization, across store kinds. The Haar
// coefficients are ±1 and each element is touched in exactly one cell, so
// a fact append costs O(#elements * d) regardless of cube volume.

#include <benchmark/benchmark.h>

#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "core/update.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace {

struct Setup {
  vecube::CubeShape shape;
  vecube::Tensor cube;
  vecube::ElementStore store;
};

Setup MakeSetup(const std::vector<vecube::ElementId>& set) {
  auto shape = vecube::CubeShape::MakeSquare(3, 32);
  vecube::Rng rng(1);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  vecube::ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(set);
  return Setup{*shape, std::move(cube).value(), std::move(store).value()};
}

void RunPointDeltas(benchmark::State& state,
                    const std::vector<vecube::ElementId>& set) {
  Setup setup = MakeSetup(set);
  vecube::Rng rng(2);
  for (auto _ : state) {
    std::vector<uint32_t> coords(3);
    for (uint32_t m = 0; m < 3; ++m) {
      coords[m] = static_cast<uint32_t>(rng.UniformU64(32));
    }
    auto st = vecube::ApplyPointDelta(&setup.store, coords, 1.0);
    benchmark::DoNotOptimize(st.ok());
  }
  state.counters["elements"] = static_cast<double>(setup.store.size());
}

void BM_PointDeltaCubeOnly(benchmark::State& state) {
  auto shape = vecube::CubeShape::MakeSquare(3, 32);
  RunPointDeltas(state, vecube::CubeOnlySet(*shape));
}
BENCHMARK(BM_PointDeltaCubeOnly);

void BM_PointDeltaWaveletBasis(benchmark::State& state) {
  auto shape = vecube::CubeShape::MakeSquare(3, 32);
  RunPointDeltas(state, vecube::WaveletBasisSet(*shape));
}
BENCHMARK(BM_PointDeltaWaveletBasis);

void BM_PointDeltaViewHierarchy(benchmark::State& state) {
  auto shape = vecube::CubeShape::MakeSquare(3, 32);
  RunPointDeltas(state, vecube::ViewHierarchySet(*shape));
}
BENCHMARK(BM_PointDeltaViewHierarchy);

void BM_PointDeltaIntermediatePyramid(benchmark::State& state) {
  auto shape = vecube::CubeShape::MakeSquare(3, 32);
  RunPointDeltas(state,
                 vecube::ViewElementGraph(*shape).IntermediateElements());
}
BENCHMARK(BM_PointDeltaIntermediatePyramid);

void BM_FullRematerializeWaveletBasis(benchmark::State& state) {
  // The alternative to the incremental path: recompute the whole basis.
  auto shape = vecube::CubeShape::MakeSquare(3, 32);
  vecube::Rng rng(3);
  auto cube = vecube::UniformIntegerCube(*shape, &rng);
  const auto basis = vecube::WaveletBasisSet(*shape);
  for (auto _ : state) {
    vecube::ElementComputer computer(*shape, &*cube);
    auto store = computer.Materialize(basis);
    benchmark::DoNotOptimize(store->StorageCells());
  }
}
BENCHMARK(BM_FullRematerializeWaveletBasis);

}  // namespace

BENCHMARK_MAIN();
