// Reproduces Experiment 1 / Figure 8 of the paper (Section 7.2.1):
// non-redundant basis strategies on a 4-dimensional data cube with domain
// size 16 per dimension (view element graph of 923,521 elements, 16
// aggregated views).
//
// 100 trials; each trial draws a random access-probability vector over
// the 16 aggregated views and evaluates the processing cost (Eq. 29 pair
// model) of three strategies:
//   [D] store the data cube only,
//   [W] store the wavelet view element basis,
//   [V] store the best non-redundant view element basis (Algorithm 1).
//
// The paper reports: [V] averages 53.8% of [D]'s cost, and [W] is worse
// than both. We reproduce the ordering and report our measured ratios
// (absolute per-trial values depend on the drawn frequencies).

// After the cost-model trials, a few trials are re-run *executed*: the
// selected bases are materialized over a real synthetic cube and every
// queried view is actually assembled, verifying that the measured
// operation counts respect the model ([D] exactly; [V] at or below its
// pair-model prediction, since the executable planner uses the tighter
// Procedure-3 tree accounting).

#include <cstdio>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/shape.h"
#include "cube/synthetic.h"
#include "select/algorithm1.h"
#include "select/pair_cost.h"
#include "util/rng.h"
#include "workload/population.h"

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 100;

  auto shape_result = vecube::CubeShape::MakeSquare(4, 16);
  if (!shape_result.ok()) return 1;
  const vecube::CubeShape shape = *shape_result;

  const vecube::ViewElementGraph graph(shape);
  std::printf("Experiment 1 (Figure 8): non-redundant bases on a 4-D cube, "
              "n = 16\n");
  std::printf("view element graph: %llu elements, %llu aggregated views\n\n",
              static_cast<unsigned long long>(graph.NumElements()),
              static_cast<unsigned long long>(graph.NumAggregatedViews()));

  const auto cube_set = vecube::CubeOnlySet(shape);
  const auto wavelet_set = vecube::WaveletBasisSet(shape);

  vecube::Rng rng(19980601);  // PODS'98 conference date as the seed

  std::printf("%-6s %14s %14s %14s %8s\n", "trial", "[D] cube", "[W] wavelet",
              "[V] Algorithm1", "V/D");
  double sum_d = 0, sum_w = 0, sum_v = 0, sum_ratio = 0;
  int v_best = 0, w_worst = 0;
  for (int trial = 0; trial < trials; ++trial) {
    auto population = vecube::RandomViewPopulation(shape, &rng);
    if (!population.ok()) return 1;

    const double cost_d =
        vecube::PopulationPairCost(cube_set, *population, shape);
    const double cost_w =
        vecube::PopulationPairCost(wavelet_set, *population, shape);
    auto selection = vecube::SelectMinCostBasis(shape, *population);
    if (!selection.ok()) {
      std::fprintf(stderr, "Algorithm 1 failed: %s\n",
                   selection.status().ToString().c_str());
      return 1;
    }
    const double cost_v = selection->predicted_cost;

    sum_d += cost_d;
    sum_w += cost_w;
    sum_v += cost_v;
    sum_ratio += cost_v / cost_d;
    if (cost_v <= cost_d && cost_v <= cost_w) ++v_best;
    if (cost_w >= cost_d) ++w_worst;

    std::printf("%-6d %14.0f %14.0f %14.0f %7.1f%%\n", trial, cost_d, cost_w,
                cost_v, 100.0 * cost_v / cost_d);
  }

  std::printf("\nAverages over %d trials:\n", trials);
  std::printf("  [D] data cube only    : %14.0f\n", sum_d / trials);
  std::printf("  [W] wavelet basis     : %14.0f\n", sum_w / trials);
  std::printf("  [V] Algorithm 1 basis : %14.0f\n", sum_v / trials);
  std::printf("  mean per-trial ratio [V]/[D]: %.1f%%  (paper: 53.8%%)\n",
              100.0 * sum_ratio / trials);
  std::printf("  [V] best of the three in %d/%d trials "
              "(paper: guaranteed, superset argument)\n",
              v_best, trials);
  std::printf("  [W] >= [D] in %d/%d trials (paper: wavelet performs worse "
              "than both)\n",
              w_worst, trials);

  // Executed cross-check on a real cube for a few trials.
  const int executed_trials = trials < 3 ? trials : 3;
  std::printf("\nExecuted cross-check (%d trials, real cube, measured "
              "add/sub ops for one access of each view):\n",
              executed_trials);
  vecube::Rng data_rng(424242);
  auto cube = vecube::UniformIntegerCube(shape, &data_rng);
  if (!cube.ok()) return 1;
  vecube::ElementComputer computer(shape, &*cube);
  vecube::Rng exec_rng(19980601);  // fresh stream, same family of trials
  bool executed_ok = true;
  for (int trial = 0; trial < executed_trials; ++trial) {
    auto population = vecube::RandomViewPopulation(shape, &exec_rng);
    auto selection = vecube::SelectMinCostBasis(shape, *population);
    if (!population.ok() || !selection.ok()) return 1;

    auto cube_store = computer.Materialize(cube_set);
    auto basis_store = computer.Materialize(selection->basis);
    if (!cube_store.ok() || !basis_store.ok()) return 1;
    vecube::AssemblyEngine d_engine(&*cube_store);
    vecube::AssemblyEngine v_engine(&*basis_store);

    double d_measured = 0, v_measured = 0;
    for (const vecube::QuerySpec& q : population->queries()) {
      vecube::OpCounter d_ops, v_ops;
      auto a = d_engine.Assemble(q.view, &d_ops);
      auto b = v_engine.Assemble(q.view, &v_ops);
      if (!a.ok() || !b.ok() || !a->ApproxEquals(*b, 1e-6)) {
        std::fprintf(stderr, "executed answers disagree!\n");
        return 1;
      }
      d_measured += q.frequency * static_cast<double>(d_ops.adds);
      v_measured += q.frequency * static_cast<double>(v_ops.adds);
    }
    const double d_predicted =
        vecube::PopulationPairCost(cube_set, *population, shape);
    const double v_predicted = selection->predicted_cost;
    std::printf("  trial %d: [D] measured %10.0f (predicted %10.0f)   "
                "[V] measured %10.0f (pair-model bound %10.0f)\n",
                trial, d_measured, d_predicted, v_measured, v_predicted);
    if (d_measured != d_predicted) executed_ok = false;
    if (v_measured > v_predicted + 1e-6) executed_ok = false;
  }
  std::printf("  [D] measured == predicted and [V] measured <= pair bound: "
              "%s\n", executed_ok ? "yes" : "NO");
  return (v_best == trials && executed_ok) ? 0 : 1;
}
