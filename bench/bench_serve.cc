// Concurrent serving benchmark: replays a Zipf-skewed view-query workload
// through the sharded ViewCache at several thread counts and reports hit
// rate and assembly operations saved versus uncached serving.
//
// Each worker owns a private AssemblyEngine (the engine's memo tables are
// not thread-safe) over the shared read-only store; all workers share one
// ViewCache. The query sequence is pre-generated deterministically and
// partitioned across workers, so the set of views served is identical at
// every thread count; assembly itself is deterministic, so whichever
// worker wins the single-flight ticket for a view, every reader sees
// bit-identical data — verified against a single-threaded reference at
// the end.
//
// A second, open-loop SLO phase replays a prefix of the traffic on a
// Poisson arrival schedule through the full robustness stack
// (AdmissionController + per-worker ElementServer) with tight deadlines
// and a degradation-eligible slice, gating that every query resolves to
// exactly one of ok / deadline_exceeded / shed / degraded, that exact
// answers stay bit-identical, and that degraded answers honor their L2
// bound. Reports p50/p99 served latency and shed/degraded rates.
//
// The baseline is Σ PlanCost(query) over the whole sequence: the ops an
// uncached server would spend (measured ops == plan cost is a library
// invariant, tested elsewhere). Every run must satisfy the serving
// accounting identity
//
//   ops_saved + ops_executed == baseline_ops
//
// and — absent evictions — ops_executed must be identical at every
// thread count: single-flight miss coalescing means concurrency changes
// who assembles, never how much is assembled. Workers start behind a
// latch so the timed region excludes thread spawn. Emits
// BENCH_serve.json.
//
// Usage: bench_serve [extent] [ndim] [queries] [threads]
//        bench_serve --smoke
//   extent   per-dimension domain size     (default 16)
//   ndim     number of dimensions          (default 4)
//   queries  total queries per run         (default 40000)
//   threads  max worker thread count       (default: hardware concurrency)
//   --smoke  small CI workload (8^3 cube, 4000 queries, <=4 threads) with
//            a relaxed scaling gate tolerant of noisy shared runners
//
// Exit status is nonzero on any correctness failure, on a broken
// accounting identity, on a hit rate below 90% when queries >= 1000, and
// on multi-threaded runs failing the scaling gate (strictly faster than
// one thread in full runs; within 1.5x in --smoke runs).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <algorithm>
#include <cmath>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/shape.h"
#include "cube/synthetic.h"
#include "serve/admission.h"
#include "serve/serving.h"
#include "serve/view_cache.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/population.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Per-worker outcome tally of the open-loop SLO phase. Every issued
/// query lands in exactly one bucket; `other` (any status outside the
/// robustness contract) fails the run.
struct SloTally {
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t shed = 0;
  uint64_t degraded = 0;
  uint64_t other = 0;
  std::vector<double> served_latency_ms;  // ok + degraded only
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

struct RunResult {
  uint32_t threads = 1;
  double best_ms = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t coalesced_hits = 0;
  uint64_t ops_saved = 0;
  uint64_t ops_executed = 0;
  uint64_t evictions = 0;

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const uint32_t extent =
      smoke ? 8 : (argc > 1 ? std::atoi(argv[1]) : 16);
  const uint32_t ndim = smoke ? 3 : (argc > 2 ? std::atoi(argv[2]) : 4);
  const uint64_t queries =
      smoke ? 4000 : (argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 40000);
  const uint32_t hardware = vecube::ThreadPool::DefaultThreadCount();
  const uint32_t max_threads =
      smoke ? (hardware < 4 ? hardware : 4)
            : (argc > 4 ? std::atoi(argv[4]) : hardware);
  constexpr int kReps = 3;

  auto shape_result = vecube::CubeShape::MakeSquare(ndim, extent);
  if (!shape_result.ok()) {
    std::fprintf(stderr, "bad shape: %s\n",
                 shape_result.status().ToString().c_str());
    return 1;
  }
  const vecube::CubeShape shape = *shape_result;
  std::printf("serving bench%s: %u^%u cube (%llu cells), cube-only store, "
              "%llu Zipf(1.1) queries\n",
              smoke ? " (smoke)" : "", extent, ndim,
              static_cast<unsigned long long>(shape.volume()),
              static_cast<unsigned long long>(queries));

  vecube::Rng rng(24);
  auto cube = vecube::UniformIntegerCube(shape, &rng, -9, 9);
  if (!cube.ok()) return 1;
  vecube::ElementComputer computer(shape, &*cube);
  auto store = computer.Materialize(vecube::CubeOnlySet(shape));
  if (!store.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  auto population = vecube::ZipfViewPopulation(shape, &rng, 1.1);
  if (!population.ok()) {
    std::fprintf(stderr, "population failed: %s\n",
                 population.status().ToString().c_str());
    return 1;
  }

  // Pre-generate the query sequence so every run serves the same traffic.
  std::vector<vecube::ElementId> sequence;
  sequence.reserve(queries);
  for (uint64_t q = 0; q < queries; ++q) {
    sequence.push_back(population->Sample(&rng));
  }

  // Uncached baseline and single-threaded reference answers.
  vecube::AssemblyEngine reference(&*store);
  uint64_t baseline_ops = 0;
  std::map<vecube::ElementId, vecube::Tensor> expected;
  for (const vecube::ElementId& view : sequence) {
    baseline_ops += reference.PlanCost(view);
    if (!expected.count(view)) {
      auto data = reference.Assemble(view);
      if (!data.ok()) {
        std::fprintf(stderr, "reference assembly failed: %s\n",
                     data.status().ToString().c_str());
        return 1;
      }
      expected.emplace(view, std::move(data).value());
    }
  }
  std::printf("  %zu distinct views, baseline %llu assembly ops\n",
              expected.size(),
              static_cast<unsigned long long>(baseline_ops));

  std::vector<uint32_t> thread_counts;
  for (uint32_t t : {1u, 4u, 8u}) {
    if (t == 1 || t <= max_threads) thread_counts.push_back(t);
  }

  std::vector<RunResult> results;
  for (uint32_t threads : thread_counts) {
    RunResult run;
    run.threads = threads;
    run.best_ms = 1e300;
    double checksum = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      vecube::ViewCacheOptions cache_options;
      cache_options.enabled = true;
      vecube::ViewCache cache(cache_options);

      std::vector<uint64_t> ops_by_thread(threads, 0);
      std::vector<double> sum_by_thread(threads, 0.0);
      std::vector<int> failed(threads, 0);
      // Start latch: every worker parks behind `go` once it has built its
      // engine, so the timed region measures serving, not thread spawn.
      std::atomic<uint32_t> ready{0};
      std::atomic<bool> go{false};
      std::chrono::steady_clock::time_point start;
      double ms = 0.0;
      {
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (uint32_t w = 0; w < threads; ++w) {
          workers.emplace_back([&, w]() {
            vecube::AssemblyEngine engine(&*store);
            ready.fetch_add(1, std::memory_order_acq_rel);
            while (!go.load(std::memory_order_acquire)) {
              std::this_thread::yield();  // oversubscribed boxes: free the core
            }
            const uint64_t lo = queries * w / threads;
            const uint64_t hi = queries * (w + 1) / threads;
            for (uint64_t q = lo; q < hi; ++q) {
              const vecube::ElementId& view = sequence[q];
              double cell0 = 0.0;
              for (;;) {
                vecube::ViewCache::LookupOutcome outcome =
                    cache.LookupOrBegin(view);
                if (outcome.hit) {
                  cell0 = (*outcome.hit)[0];
                  break;
                }
                if (!outcome.fill.leader()) {
                  vecube::ViewCache::FillWait wait =
                      cache.WaitFill(outcome.fill);
                  if (!wait.status.ok()) continue;  // leader aborted — retry
                  cell0 = (*wait.data)[0];
                  break;
                }
                vecube::OpCounter ops;
                auto data = engine.Assemble(view, &ops);
                if (!data.ok()) {
                  cache.AbortFill(std::move(outcome.fill));
                  failed[w] = 1;
                  return;
                }
                ops_by_thread[w] += ops.adds;
                auto served = cache.CompleteFill(std::move(outcome.fill),
                                                 std::move(data).value(),
                                                 engine.PlanCost(view));
                cell0 = (*served)[0];
                break;
              }
              sum_by_thread[w] += cell0;
            }
          });
        }
        while (ready.load(std::memory_order_acquire) < threads) {
          std::this_thread::yield();
        }
        start = std::chrono::steady_clock::now();
        go.store(true, std::memory_order_release);
        for (std::thread& worker : workers) worker.join();
        ms = MillisSince(start);
      }
      for (uint32_t w = 0; w < threads; ++w) {
        if (failed[w]) {
          std::fprintf(stderr, "FAIL: worker assembly error\n");
          return 1;
        }
      }
      // Snapshot counters before the verification pass below adds its own
      // lookups, so the reported numbers describe the timed workload only.
      const vecube::ServeMetrics metrics = cache.Metrics();

      // Accounting identity: every query either paid its plan cost
      // (leader miss) or saved it (hit / coalesced follower).
      if (metrics.assembly_ops_saved + metrics.assembly_ops_executed !=
          baseline_ops) {
        std::fprintf(stderr,
                     "FAIL: ops_saved %llu + ops_executed %llu != "
                     "baseline %llu at %u threads\n",
                     static_cast<unsigned long long>(
                         metrics.assembly_ops_saved),
                     static_cast<unsigned long long>(
                         metrics.assembly_ops_executed),
                     static_cast<unsigned long long>(baseline_ops), threads);
        return 1;
      }
      uint64_t measured = 0;
      for (uint32_t w = 0; w < threads; ++w) measured += ops_by_thread[w];
      if (measured != metrics.assembly_ops_executed) {
        std::fprintf(stderr,
                     "FAIL: measured assembly ops %llu != accounted "
                     "ops_executed %llu\n",
                     static_cast<unsigned long long>(measured),
                     static_cast<unsigned long long>(
                         metrics.assembly_ops_executed));
        return 1;
      }

      // Bit-exact check: every entry still resident matches the reference.
      uint64_t verified = 0;
      for (const auto& [id, tensor] : expected) {
        auto cached = cache.Lookup(id);
        if (cached == nullptr) continue;  // evicted — nothing to compare
        if (cached->data() != tensor.data()) {
          std::fprintf(stderr, "FAIL: cached %s differs from reference\n",
                       id.ToString().c_str());
          return 1;
        }
        ++verified;
      }
      if (verified == 0) {
        std::fprintf(stderr, "FAIL: nothing resident to verify\n");
        return 1;
      }

      double total = 0.0;
      for (uint32_t w = 0; w < threads; ++w) total += sum_by_thread[w];
      if (checksum == 0.0) {
        checksum = total;
      } else if (total != checksum) {
        std::fprintf(stderr, "FAIL: checksum drifted across reps\n");
        return 1;
      }

      if (ms < run.best_ms) {
        run.best_ms = ms;
        run.hits = metrics.hits;
        run.misses = metrics.misses;
        run.coalesced_hits = metrics.coalesced_hits;
        run.ops_saved = metrics.assembly_ops_saved;
        run.ops_executed = metrics.assembly_ops_executed;
        run.evictions = metrics.evictions;
      }
    }
    results.push_back(run);
    std::printf("  threads=%-3u best of %d: %10.2f ms   hit_rate=%.4f "
                "ops_saved=%llu executed=%llu coalesced=%llu "
                "evictions=%llu\n",
                run.threads, kReps, run.best_ms, run.HitRate(),
                static_cast<unsigned long long>(run.ops_saved),
                static_cast<unsigned long long>(run.ops_executed),
                static_cast<unsigned long long>(run.coalesced_hits),
                static_cast<unsigned long long>(run.evictions));
  }

  bool any_evictions = false;
  for (const RunResult& run : results) {
    if (run.evictions > 0) any_evictions = true;
  }
  for (const RunResult& run : results) {
    if (queries >= 1000 && run.HitRate() < 0.90) {
      std::fprintf(stderr,
                   "FAIL: hit rate %.4f below 0.90 at %u threads\n",
                   run.HitRate(), run.threads);
      return 1;
    }
    // Single-flight makes the assembled work independent of concurrency;
    // only eviction-driven re-assembly (timing dependent) excuses drift.
    if (!any_evictions && run.ops_executed != results[0].ops_executed) {
      std::fprintf(stderr,
                   "FAIL: ops_executed %llu at %u threads != %llu at 1 "
                   "thread (misses not coalesced?)\n",
                   static_cast<unsigned long long>(run.ops_executed),
                   run.threads,
                   static_cast<unsigned long long>(results[0].ops_executed));
      return 1;
    }
  }

  // Scaling gate: the contention-free hit path must not anti-scale. Full
  // runs demand a strict win over one thread; smoke runs (tiny workload,
  // shared CI runners) only reject catastrophic regressions.
  const double tolerance = smoke ? 1.5 : 1.0;
  for (const RunResult& run : results) {
    if (run.threads == 1 || run.threads > hardware) continue;
    if (run.best_ms >= results[0].best_ms * tolerance) {
      std::fprintf(stderr,
                   "FAIL: %u threads took %.2f ms vs %.2f ms single-threaded "
                   "(gate %.2fx)\n",
                   run.threads, run.best_ms, results[0].best_ms, tolerance);
      return 1;
    }
  }

  // ------------------------------------------------------------------
  // Open-loop SLO phase (DESIGN.md §13): a pre-generated Poisson arrival
  // schedule replays a prefix of the same Zipf traffic through the full
  // robustness stack — AdmissionController in front, per-worker
  // ElementServer behind, shared fresh ViewCache — with tight per-query
  // deadlines. Arrivals are anchored to the schedule, not to completions,
  // so an overloaded server must shed or miss deadlines rather than
  // silently serializing. Every 8th query opts into degradation with a
  // deliberately tiny op budget, so some leaders answer approximately;
  // their returned L2 bound is verified against the exact reference
  // tensor. Gates: every query resolves to exactly one of
  // ok / deadline_exceeded / shed / degraded; exact answers stay
  // bit-identical to the reference (degraded answers are excluded from
  // that identity and checked against their bound instead).
  // ------------------------------------------------------------------
  // Robustness, not throughput: oversubscribing a small box is fine (and
  // useful — it creates the queueing the admission controller exists for).
  const uint32_t slo_threads = std::max(4u, thread_counts.back());
  const uint64_t slo_queries =
      queries < (smoke ? 2000ull : 8000ull) ? queries
                                            : (smoke ? 2000ull : 8000ull);
  const double mean_interarrival_us = smoke ? 100.0 : 50.0;
  const std::chrono::milliseconds slo_deadline{smoke ? 25 : 10};
  constexpr uint64_t kDegradedOpsBudget = 48;  // << any plan cost here

  std::vector<std::chrono::microseconds> arrival(slo_queries);
  {
    double at_us = 0.0;
    for (uint64_t q = 0; q < slo_queries; ++q) {
      // Exponential inter-arrival via inversion (1 - U in (0, 1]).
      at_us += -mean_interarrival_us * std::log(1.0 - rng.UniformDouble());
      arrival[q] = std::chrono::microseconds(static_cast<int64_t>(at_us));
    }
  }

  vecube::ViewCacheOptions slo_cache_options;
  slo_cache_options.enabled = true;
  vecube::ViewCache slo_cache(slo_cache_options);
  vecube::AdmissionOptions admission_options;
  admission_options.max_inflight = slo_threads > 1 ? slo_threads / 2 : 1;
  admission_options.max_queue = 4;
  admission_options.retry_after = std::chrono::milliseconds(5);
  vecube::AdmissionController admission(admission_options);

  std::vector<SloTally> tallies(slo_threads);
  std::vector<std::string> slo_errors(slo_threads);
  {
    std::atomic<uint32_t> ready{0};
    std::atomic<bool> go{false};
    std::chrono::steady_clock::time_point slo_start;
    std::vector<std::thread> workers;
    workers.reserve(slo_threads);
    for (uint32_t w = 0; w < slo_threads; ++w) {
      workers.emplace_back([&, w]() {
        vecube::AssemblyEngine engine(&*store);
        vecube::ElementServer server(&engine, &*store, &slo_cache);
        SloTally& tally = tallies[w];
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        for (uint64_t q = w; q < slo_queries; q += slo_threads) {
          const std::chrono::steady_clock::time_point due =
              slo_start + arrival[q];
          std::this_thread::sleep_until(due);  // open-loop: arrivals fixed
          const vecube::ElementId& view = sequence[q];
          vecube::QueryContext ctx =
              vecube::QueryContext::WithDeadline(due + slo_deadline);
          // Every 8th query opts in; q == 0 as well, since the very first
          // arrival is all but certain to lead its fill on a cold cache
          // and therefore actually exercise the degradation path.
          const bool degrade_eligible = q % 8 == 7 || q == 0;
          if (degrade_eligible) {
            ctx.set_allow_degraded(true).set_ops_budget(kDegradedOpsBudget);
          }
          auto permit = admission.Admit(ctx);
          if (!permit.ok()) {
            if (permit.status().IsResourceExhausted()) {
              slo_cache.RecordShed();
              ++tally.shed;
            } else if (permit.status().IsDeadlineExceeded() ||
                       permit.status().IsCancelled()) {
              slo_cache.RecordDeadlineExceeded();
              ++tally.deadline_exceeded;
            } else {
              ++tally.other;
              slo_errors[w] = permit.status().ToString();
            }
            continue;
          }
          auto answer = server.Serve(view, ctx);
          if (!answer.ok()) {
            if (answer.status().IsDeadlineExceeded() ||
                answer.status().IsCancelled()) {
              ++tally.deadline_exceeded;  // ElementServer recorded it
            } else {
              ++tally.other;
              slo_errors[w] = answer.status().ToString();
            }
            continue;
          }
          const double latency_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - due)
                  .count();
          const vecube::Tensor& exact = expected.at(view);
          if (answer->degraded) {
            // Soundness of the degradation contract: the actual L2 error
            // must not exceed the bound the answer carried.
            double err2 = 0.0;
            for (uint64_t i = 0; i < exact.size(); ++i) {
              const double d = answer->data[i] - exact[i];
              err2 += d * d;
            }
            const double err = std::sqrt(err2);
            if (err > answer->l2_bound + 1e-6 * (1.0 + answer->l2_bound)) {
              ++tally.other;
              slo_errors[w] = "degraded answer L2 error " +
                              std::to_string(err) + " exceeds bound " +
                              std::to_string(answer->l2_bound);
              continue;
            }
            ++tally.degraded;
          } else {
            // Exact answers stay in the bit-exactness identity.
            if (answer->data.data() != exact.data()) {
              ++tally.other;
              slo_errors[w] = "exact answer differs from reference for " +
                              view.ToString();
              continue;
            }
            ++tally.ok;
          }
          tally.served_latency_ms.push_back(latency_ms);
        }
      });
    }
    while (ready.load(std::memory_order_acquire) < slo_threads) {
      std::this_thread::yield();
    }
    slo_start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread& worker : workers) worker.join();
  }
  admission.Shutdown();
  if (!admission.Drain(std::chrono::milliseconds(1000))) {
    std::fprintf(stderr, "FAIL: admission controller did not drain\n");
    return 1;
  }

  SloTally slo;
  std::vector<double> latencies;
  for (uint32_t w = 0; w < slo_threads; ++w) {
    const SloTally& tally = tallies[w];
    if (tally.other > 0) {
      std::fprintf(stderr, "FAIL: SLO worker %u: %s\n", w,
                   slo_errors[w].c_str());
      return 1;
    }
    slo.ok += tally.ok;
    slo.deadline_exceeded += tally.deadline_exceeded;
    slo.shed += tally.shed;
    slo.degraded += tally.degraded;
    latencies.insert(latencies.end(), tally.served_latency_ms.begin(),
                     tally.served_latency_ms.end());
  }
  // The robustness accounting identity: every issued query resolved to
  // exactly one contract outcome — no unbounded waits, no lost queries.
  if (slo.ok + slo.deadline_exceeded + slo.shed + slo.degraded !=
      slo_queries) {
    std::fprintf(stderr,
                 "FAIL: ok %llu + deadline %llu + shed %llu + degraded %llu "
                 "!= issued %llu\n",
                 static_cast<unsigned long long>(slo.ok),
                 static_cast<unsigned long long>(slo.deadline_exceeded),
                 static_cast<unsigned long long>(slo.shed),
                 static_cast<unsigned long long>(slo.degraded),
                 static_cast<unsigned long long>(slo_queries));
    return 1;
  }
  const vecube::ServeMetrics slo_metrics = slo_cache.Metrics();
  if (slo_metrics.shed != slo.shed || slo_metrics.degraded != slo.degraded) {
    std::fprintf(stderr,
                 "FAIL: ServeMetrics (shed %llu, degraded %llu) disagree "
                 "with outcomes (shed %llu, degraded %llu)\n",
                 static_cast<unsigned long long>(slo_metrics.shed),
                 static_cast<unsigned long long>(slo_metrics.degraded),
                 static_cast<unsigned long long>(slo.shed),
                 static_cast<unsigned long long>(slo.degraded));
    return 1;
  }
  const double p50_ms = Percentile(&latencies, 0.50);
  const double p99_ms = Percentile(&latencies, 0.99);
  const double shed_rate =
      static_cast<double>(slo.shed) / static_cast<double>(slo_queries);
  const double degraded_rate =
      static_cast<double>(slo.degraded) / static_cast<double>(slo_queries);
  std::printf(
      "  SLO: %llu queries, deadline %lldms, %u workers, inflight<=%u  "
      "ok=%llu deadline_exceeded=%llu shed=%llu degraded=%llu  "
      "p50=%.3fms p99=%.3fms follower_retries=%llu\n",
      static_cast<unsigned long long>(slo_queries),
      static_cast<long long>(slo_deadline.count()), slo_threads,
      admission_options.max_inflight,
      static_cast<unsigned long long>(slo.ok),
      static_cast<unsigned long long>(slo.deadline_exceeded),
      static_cast<unsigned long long>(slo.shed),
      static_cast<unsigned long long>(slo.degraded), p50_ms, p99_ms,
      static_cast<unsigned long long>(slo_metrics.follower_retries));

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"concurrent_view_serving\",\n");
  std::fprintf(json, "  \"extent\": %u,\n  \"ndim\": %u,\n", extent, ndim);
  std::fprintf(json, "  \"queries\": %llu,\n",
               static_cast<unsigned long long>(queries));
  std::fprintf(json, "  \"distinct_views\": %zu,\n", expected.size());
  std::fprintf(json, "  \"zipf_skew\": 1.1,\n");
  std::fprintf(json, "  \"hardware_threads\": %u,\n", hardware);
  std::fprintf(json, "  \"baseline_ops\": %llu,\n",
               static_cast<unsigned long long>(baseline_ops));
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& run = results[i];
    std::fprintf(json,
                 "    {\"threads\": %u, \"best_ms\": %.3f, \"hits\": %llu, "
                 "\"misses\": %llu, \"hit_rate\": %.4f, "
                 "\"coalesced_hits\": %llu, \"ops_saved\": %llu, "
                 "\"ops_executed\": %llu, \"evictions\": %llu}%s\n",
                 run.threads, run.best_ms,
                 static_cast<unsigned long long>(run.hits),
                 static_cast<unsigned long long>(run.misses), run.HitRate(),
                 static_cast<unsigned long long>(run.coalesced_hits),
                 static_cast<unsigned long long>(run.ops_saved),
                 static_cast<unsigned long long>(run.ops_executed),
                 static_cast<unsigned long long>(run.evictions),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"slo\": {\n");
  std::fprintf(json, "    \"queries\": %llu,\n",
               static_cast<unsigned long long>(slo_queries));
  std::fprintf(json, "    \"deadline_ms\": %lld,\n",
               static_cast<long long>(slo_deadline.count()));
  std::fprintf(json, "    \"workers\": %u,\n", slo_threads);
  std::fprintf(json, "    \"max_inflight\": %u,\n",
               admission_options.max_inflight);
  std::fprintf(json, "    \"mean_interarrival_us\": %.1f,\n",
               mean_interarrival_us);
  std::fprintf(json, "    \"ok\": %llu,\n",
               static_cast<unsigned long long>(slo.ok));
  std::fprintf(json, "    \"deadline_exceeded\": %llu,\n",
               static_cast<unsigned long long>(slo.deadline_exceeded));
  std::fprintf(json, "    \"shed\": %llu,\n",
               static_cast<unsigned long long>(slo.shed));
  std::fprintf(json, "    \"degraded\": %llu,\n",
               static_cast<unsigned long long>(slo.degraded));
  std::fprintf(json, "    \"follower_retries\": %llu,\n",
               static_cast<unsigned long long>(slo_metrics.follower_retries));
  std::fprintf(json, "    \"p50_ms\": %.3f,\n", p50_ms);
  std::fprintf(json, "    \"p99_ms\": %.3f,\n", p99_ms);
  std::fprintf(json, "    \"shed_rate\": %.4f,\n", shed_rate);
  std::fprintf(json, "    \"degraded_rate\": %.4f\n", degraded_rate);
  std::fprintf(json, "  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("  wrote BENCH_serve.json\n");
  return 0;
}
