// Concurrent serving benchmark: replays a Zipf-skewed view-query workload
// through the sharded ViewCache at several thread counts and reports hit
// rate and assembly operations saved versus uncached serving.
//
// Each worker owns a private AssemblyEngine (the engine's memo tables are
// not thread-safe) over the shared read-only store; all workers share one
// ViewCache. The query sequence is pre-generated deterministically and
// partitioned across workers, so the set of views served is identical at
// every thread count; assembly itself is deterministic, so whichever
// worker wins the single-flight ticket for a view, every reader sees
// bit-identical data — verified against a single-threaded reference at
// the end.
//
// The baseline is Σ PlanCost(query) over the whole sequence: the ops an
// uncached server would spend (measured ops == plan cost is a library
// invariant, tested elsewhere). Every run must satisfy the serving
// accounting identity
//
//   ops_saved + ops_executed == baseline_ops
//
// and — absent evictions — ops_executed must be identical at every
// thread count: single-flight miss coalescing means concurrency changes
// who assembles, never how much is assembled. Workers start behind a
// latch so the timed region excludes thread spawn. Emits
// BENCH_serve.json.
//
// Usage: bench_serve [extent] [ndim] [queries] [threads]
//        bench_serve --smoke
//   extent   per-dimension domain size     (default 16)
//   ndim     number of dimensions          (default 4)
//   queries  total queries per run         (default 40000)
//   threads  max worker thread count       (default: hardware concurrency)
//   --smoke  small CI workload (8^3 cube, 4000 queries, <=4 threads) with
//            a relaxed scaling gate tolerant of noisy shared runners
//
// Exit status is nonzero on any correctness failure, on a broken
// accounting identity, on a hit rate below 90% when queries >= 1000, and
// on multi-threaded runs failing the scaling gate (strictly faster than
// one thread in full runs; within 1.5x in --smoke runs).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/shape.h"
#include "cube/synthetic.h"
#include "serve/view_cache.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/population.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct RunResult {
  uint32_t threads = 1;
  double best_ms = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t coalesced_hits = 0;
  uint64_t ops_saved = 0;
  uint64_t ops_executed = 0;
  uint64_t evictions = 0;

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const uint32_t extent =
      smoke ? 8 : (argc > 1 ? std::atoi(argv[1]) : 16);
  const uint32_t ndim = smoke ? 3 : (argc > 2 ? std::atoi(argv[2]) : 4);
  const uint64_t queries =
      smoke ? 4000 : (argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 40000);
  const uint32_t hardware = vecube::ThreadPool::DefaultThreadCount();
  const uint32_t max_threads =
      smoke ? (hardware < 4 ? hardware : 4)
            : (argc > 4 ? std::atoi(argv[4]) : hardware);
  constexpr int kReps = 3;

  auto shape_result = vecube::CubeShape::MakeSquare(ndim, extent);
  if (!shape_result.ok()) {
    std::fprintf(stderr, "bad shape: %s\n",
                 shape_result.status().ToString().c_str());
    return 1;
  }
  const vecube::CubeShape shape = *shape_result;
  std::printf("serving bench%s: %u^%u cube (%llu cells), cube-only store, "
              "%llu Zipf(1.1) queries\n",
              smoke ? " (smoke)" : "", extent, ndim,
              static_cast<unsigned long long>(shape.volume()),
              static_cast<unsigned long long>(queries));

  vecube::Rng rng(24);
  auto cube = vecube::UniformIntegerCube(shape, &rng, -9, 9);
  if (!cube.ok()) return 1;
  vecube::ElementComputer computer(shape, &*cube);
  auto store = computer.Materialize(vecube::CubeOnlySet(shape));
  if (!store.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  auto population = vecube::ZipfViewPopulation(shape, &rng, 1.1);
  if (!population.ok()) {
    std::fprintf(stderr, "population failed: %s\n",
                 population.status().ToString().c_str());
    return 1;
  }

  // Pre-generate the query sequence so every run serves the same traffic.
  std::vector<vecube::ElementId> sequence;
  sequence.reserve(queries);
  for (uint64_t q = 0; q < queries; ++q) {
    sequence.push_back(population->Sample(&rng));
  }

  // Uncached baseline and single-threaded reference answers.
  vecube::AssemblyEngine reference(&*store);
  uint64_t baseline_ops = 0;
  std::map<vecube::ElementId, vecube::Tensor> expected;
  for (const vecube::ElementId& view : sequence) {
    baseline_ops += reference.PlanCost(view);
    if (!expected.count(view)) {
      auto data = reference.Assemble(view);
      if (!data.ok()) {
        std::fprintf(stderr, "reference assembly failed: %s\n",
                     data.status().ToString().c_str());
        return 1;
      }
      expected.emplace(view, std::move(data).value());
    }
  }
  std::printf("  %zu distinct views, baseline %llu assembly ops\n",
              expected.size(),
              static_cast<unsigned long long>(baseline_ops));

  std::vector<uint32_t> thread_counts;
  for (uint32_t t : {1u, 4u, 8u}) {
    if (t == 1 || t <= max_threads) thread_counts.push_back(t);
  }

  std::vector<RunResult> results;
  for (uint32_t threads : thread_counts) {
    RunResult run;
    run.threads = threads;
    run.best_ms = 1e300;
    double checksum = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      vecube::ViewCacheOptions cache_options;
      cache_options.enabled = true;
      vecube::ViewCache cache(cache_options);

      std::vector<uint64_t> ops_by_thread(threads, 0);
      std::vector<double> sum_by_thread(threads, 0.0);
      std::vector<int> failed(threads, 0);
      // Start latch: every worker parks behind `go` once it has built its
      // engine, so the timed region measures serving, not thread spawn.
      std::atomic<uint32_t> ready{0};
      std::atomic<bool> go{false};
      std::chrono::steady_clock::time_point start;
      double ms = 0.0;
      {
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (uint32_t w = 0; w < threads; ++w) {
          workers.emplace_back([&, w]() {
            vecube::AssemblyEngine engine(&*store);
            ready.fetch_add(1, std::memory_order_acq_rel);
            while (!go.load(std::memory_order_acquire)) {
              std::this_thread::yield();  // oversubscribed boxes: free the core
            }
            const uint64_t lo = queries * w / threads;
            const uint64_t hi = queries * (w + 1) / threads;
            for (uint64_t q = lo; q < hi; ++q) {
              const vecube::ElementId& view = sequence[q];
              double cell0 = 0.0;
              for (;;) {
                vecube::ViewCache::LookupOutcome outcome =
                    cache.LookupOrBegin(view);
                if (outcome.hit) {
                  cell0 = (*outcome.hit)[0];
                  break;
                }
                if (!outcome.fill.leader()) {
                  auto filled = cache.WaitFill(outcome.fill);
                  if (filled == nullptr) continue;  // leader aborted
                  cell0 = (*filled)[0];
                  break;
                }
                vecube::OpCounter ops;
                auto data = engine.Assemble(view, &ops);
                if (!data.ok()) {
                  cache.AbortFill(std::move(outcome.fill));
                  failed[w] = 1;
                  return;
                }
                ops_by_thread[w] += ops.adds;
                auto served = cache.CompleteFill(std::move(outcome.fill),
                                                 std::move(data).value(),
                                                 engine.PlanCost(view));
                cell0 = (*served)[0];
                break;
              }
              sum_by_thread[w] += cell0;
            }
          });
        }
        while (ready.load(std::memory_order_acquire) < threads) {
          std::this_thread::yield();
        }
        start = std::chrono::steady_clock::now();
        go.store(true, std::memory_order_release);
        for (std::thread& worker : workers) worker.join();
        ms = MillisSince(start);
      }
      for (uint32_t w = 0; w < threads; ++w) {
        if (failed[w]) {
          std::fprintf(stderr, "FAIL: worker assembly error\n");
          return 1;
        }
      }
      // Snapshot counters before the verification pass below adds its own
      // lookups, so the reported numbers describe the timed workload only.
      const vecube::ServeMetrics metrics = cache.Metrics();

      // Accounting identity: every query either paid its plan cost
      // (leader miss) or saved it (hit / coalesced follower).
      if (metrics.assembly_ops_saved + metrics.assembly_ops_executed !=
          baseline_ops) {
        std::fprintf(stderr,
                     "FAIL: ops_saved %llu + ops_executed %llu != "
                     "baseline %llu at %u threads\n",
                     static_cast<unsigned long long>(
                         metrics.assembly_ops_saved),
                     static_cast<unsigned long long>(
                         metrics.assembly_ops_executed),
                     static_cast<unsigned long long>(baseline_ops), threads);
        return 1;
      }
      uint64_t measured = 0;
      for (uint32_t w = 0; w < threads; ++w) measured += ops_by_thread[w];
      if (measured != metrics.assembly_ops_executed) {
        std::fprintf(stderr,
                     "FAIL: measured assembly ops %llu != accounted "
                     "ops_executed %llu\n",
                     static_cast<unsigned long long>(measured),
                     static_cast<unsigned long long>(
                         metrics.assembly_ops_executed));
        return 1;
      }

      // Bit-exact check: every entry still resident matches the reference.
      uint64_t verified = 0;
      for (const auto& [id, tensor] : expected) {
        auto cached = cache.Lookup(id);
        if (cached == nullptr) continue;  // evicted — nothing to compare
        if (cached->data() != tensor.data()) {
          std::fprintf(stderr, "FAIL: cached %s differs from reference\n",
                       id.ToString().c_str());
          return 1;
        }
        ++verified;
      }
      if (verified == 0) {
        std::fprintf(stderr, "FAIL: nothing resident to verify\n");
        return 1;
      }

      double total = 0.0;
      for (uint32_t w = 0; w < threads; ++w) total += sum_by_thread[w];
      if (checksum == 0.0) {
        checksum = total;
      } else if (total != checksum) {
        std::fprintf(stderr, "FAIL: checksum drifted across reps\n");
        return 1;
      }

      if (ms < run.best_ms) {
        run.best_ms = ms;
        run.hits = metrics.hits;
        run.misses = metrics.misses;
        run.coalesced_hits = metrics.coalesced_hits;
        run.ops_saved = metrics.assembly_ops_saved;
        run.ops_executed = metrics.assembly_ops_executed;
        run.evictions = metrics.evictions;
      }
    }
    results.push_back(run);
    std::printf("  threads=%-3u best of %d: %10.2f ms   hit_rate=%.4f "
                "ops_saved=%llu executed=%llu coalesced=%llu "
                "evictions=%llu\n",
                run.threads, kReps, run.best_ms, run.HitRate(),
                static_cast<unsigned long long>(run.ops_saved),
                static_cast<unsigned long long>(run.ops_executed),
                static_cast<unsigned long long>(run.coalesced_hits),
                static_cast<unsigned long long>(run.evictions));
  }

  bool any_evictions = false;
  for (const RunResult& run : results) {
    if (run.evictions > 0) any_evictions = true;
  }
  for (const RunResult& run : results) {
    if (queries >= 1000 && run.HitRate() < 0.90) {
      std::fprintf(stderr,
                   "FAIL: hit rate %.4f below 0.90 at %u threads\n",
                   run.HitRate(), run.threads);
      return 1;
    }
    // Single-flight makes the assembled work independent of concurrency;
    // only eviction-driven re-assembly (timing dependent) excuses drift.
    if (!any_evictions && run.ops_executed != results[0].ops_executed) {
      std::fprintf(stderr,
                   "FAIL: ops_executed %llu at %u threads != %llu at 1 "
                   "thread (misses not coalesced?)\n",
                   static_cast<unsigned long long>(run.ops_executed),
                   run.threads,
                   static_cast<unsigned long long>(results[0].ops_executed));
      return 1;
    }
  }

  // Scaling gate: the contention-free hit path must not anti-scale. Full
  // runs demand a strict win over one thread; smoke runs (tiny workload,
  // shared CI runners) only reject catastrophic regressions.
  const double tolerance = smoke ? 1.5 : 1.0;
  for (const RunResult& run : results) {
    if (run.threads == 1 || run.threads > hardware) continue;
    if (run.best_ms >= results[0].best_ms * tolerance) {
      std::fprintf(stderr,
                   "FAIL: %u threads took %.2f ms vs %.2f ms single-threaded "
                   "(gate %.2fx)\n",
                   run.threads, run.best_ms, results[0].best_ms, tolerance);
      return 1;
    }
  }

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"concurrent_view_serving\",\n");
  std::fprintf(json, "  \"extent\": %u,\n  \"ndim\": %u,\n", extent, ndim);
  std::fprintf(json, "  \"queries\": %llu,\n",
               static_cast<unsigned long long>(queries));
  std::fprintf(json, "  \"distinct_views\": %zu,\n", expected.size());
  std::fprintf(json, "  \"zipf_skew\": 1.1,\n");
  std::fprintf(json, "  \"hardware_threads\": %u,\n", hardware);
  std::fprintf(json, "  \"baseline_ops\": %llu,\n",
               static_cast<unsigned long long>(baseline_ops));
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& run = results[i];
    std::fprintf(json,
                 "    {\"threads\": %u, \"best_ms\": %.3f, \"hits\": %llu, "
                 "\"misses\": %llu, \"hit_rate\": %.4f, "
                 "\"coalesced_hits\": %llu, \"ops_saved\": %llu, "
                 "\"ops_executed\": %llu, \"evictions\": %llu}%s\n",
                 run.threads, run.best_ms,
                 static_cast<unsigned long long>(run.hits),
                 static_cast<unsigned long long>(run.misses), run.HitRate(),
                 static_cast<unsigned long long>(run.coalesced_hits),
                 static_cast<unsigned long long>(run.ops_saved),
                 static_cast<unsigned long long>(run.ops_executed),
                 static_cast<unsigned long long>(run.evictions),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("  wrote BENCH_serve.json\n");
  return 0;
}
